(* Minimum-coverage instrumentation planning.

   The classic Knuth observation, specialised to this system's call/arc
   flow graph: nodes are functions plus a virtual entry arc into main,
   arcs are call sites, and Kirchhoff conservation holds at every node's
   inflow — a function's activation count (which the engines always
   measure, at activation entry) equals the sum of its incoming arc
   counts plus [nruns] for main.  Each function's inflow equation
   mentions each of its incoming arcs exactly once, so leaving at most
   one incoming arc per function uncounted yields a diagonal system:
   every elided count is recovered independently, with no propagation,
   whatever the recursion structure.  The elided arcs form an in-forest
   (a branching) of the call graph — the spanning structure — and the
   instrumented co-forest is what the engines count.

   Arc choice is seeded by a static loop-nesting estimate (a backward-
   branch interval sweep over each caller's body), so the hottest arc
   into each function is the one that goes uninstrumented.

   External calls are one shared node: the run-level [ext_calls] scalar
   conserves the total over every external site, so at most one external
   site globally may be elided (its per-site store only — the scalars
   stay exact) and recovered as the scalar minus the measured rest.

   Indirect calls keep every function's inflow attributable: a site
   through a pointer cannot be credited to a callee afterwards, so
   functions that can be indirect targets — any function whose address
   is materialised ([Lea_func] in alive code, [Gfunc] initialisers, the
   front end's address-taken list) — are ineligible for in-arc elision
   whenever the program contains an indirect site.  A target outside
   that set is only reachable by fabricating a function address from an
   integer; the engines flag such a hit on the plan ([Iplan.poisoned])
   and the profiling driver re-runs fully instrumented, so exactness
   survives even hostile programs. *)

module Il = Impact_il.Il
module Iplan = Impact_interp.Iplan

type mode =
  | Full
  | Min
  | Sampled

let mode_name = function Full -> "full" | Min -> "min" | Sampled -> "sampled"

let mode_of_string = function
  | "full" -> Some Full
  | "min" -> Some Min
  | "sampled" -> Some Sampled
  | _ -> None

let all_modes = [ Full; Min; Sampled ]

(* Prime sampling period, so the fuel-phase gate does not alias with the
   power-of-two-ish periodicities loops tend to have. *)
let sample_period = 1021

type direct_elision = {
  e_site : int;
  e_callee : int;
  e_callee_is_main : bool;
  e_siblings : int list;
      (* the callee's other (measured) direct in-sites, in alive code *)
}

type ext_elision = {
  x_site : int;
  x_others : int list;  (* every other external site in alive code *)
}

type t = {
  mode : mode;
  iplan : Iplan.t option;  (* None: count everything (the full plan) *)
  directs : direct_elision list;
  ext : ext_elision option;
  total_sites : int;  (* call sites in alive code *)
  counted_sites : int;  (* sites whose per-site store the plan keeps *)
}

(* Observability hook for the pool tests: plans must be built once per
   profiled program and shared read-only across domains, never once per
   run.  Atomic because profiling drivers may run on worker domains. *)
let plans_built = Atomic.make 0

let plans_built_count () = Atomic.get plans_built

(* Static loop-nesting depth per body index: every backward branch
   (Jump/Bnz/Switch to a label defined at or before the branch) opens an
   interval [target, branch]; an instruction's depth is the number of
   intervals covering it, accumulated with a difference array. *)
let loop_depths (f : Il.func) =
  let body = f.Il.body in
  let n = Array.length body in
  (* Labels are dense ints under [nlabels], so a position array beats a
     hash table, and a single forward pass suffices: a branch target
     already recorded lies at or before the branch, which is exactly
     the backward test.  Plan construction is on the profiling driver's
     per-program path — its cost is a pure min-mode handicap in the
     wall-clock comparison against full instrumentation. *)
  let nl = f.Il.nlabels in
  let label_at = Array.make (max nl 1) (-1) in
  let delta = Array.make (n + 1) 0 in
  Array.iteri
    (fun i instr ->
      let back l =
        if l >= 0 && l < nl then begin
          let j = label_at.(l) in
          if j >= 0 then begin
            delta.(j) <- delta.(j) + 1;
            delta.(i + 1) <- delta.(i + 1) - 1
          end
        end
      in
      match instr with
      | Il.Label l -> if l >= 0 && l < nl then label_at.(l) <- i
      | Il.Jump l -> back l
      | Il.Bnz (_, l) -> back l
      | Il.Switch (_, table, default) ->
        back default;
        Array.iter (fun (_, l) -> back l) table
      | _ -> ())
    body;
  let depth = Array.make n 0 in
  let d = ref 0 in
  for i = 0 to n - 1 do
    d := !d + delta.(i);
    depth.(i) <- !d
  done;
  depth

(* Static arc weight: 10^depth, capped so deep artificial nests cannot
   overflow.  Only the argmax matters, so the estimate being crude is
   fine — it just decides which arc goes uninstrumented. *)
let weight_of_depth d =
  let d = min d 8 in
  let rec pow acc i = if i = 0 then acc else pow (acc * 10) (i - 1) in
  pow 1 d

(* Functions whose addresses exist as runtime values: [Lea_func] in
   alive bodies, [Gfunc] global initialisers, and the front end's
   address-taken list.  Any of these may be an indirect-call target. *)
let materialized (prog : Il.program) =
  let m = Array.make (max (Array.length prog.Il.funcs) 1) false in
  let mark fid = if fid >= 0 && fid < Array.length m then m.(fid) <- true in
  Array.iter
    (fun (f : Il.func) ->
      if f.Il.alive then
        Array.iter
          (function Il.Lea_func (_, fid) -> mark fid | _ -> ())
          f.Il.body)
    prog.Il.funcs;
  Array.iter
    (fun (g : Il.global) ->
      List.iter (function _, Il.Gfunc fid -> mark fid | _ -> ()) g.Il.g_init)
    prog.Il.globals;
  List.iter mark prog.Il.address_taken;
  m

let full_plan mode ~total_sites =
  {
    mode;
    iplan = None;
    directs = [];
    ext = None;
    total_sites;
    counted_sites = total_sites;
  }

let count_alive_sites (prog : Il.program) =
  let n = ref 0 in
  Array.iter
    (fun (f : Il.func) ->
      if f.Il.alive then Il.iter_sites (fun _ -> incr n) f)
    prog.Il.funcs;
  !n

let build (prog : Il.program) mode =
  Atomic.incr plans_built;
  let nfuncs = Array.length prog.Il.funcs in
  let nsites = prog.Il.next_site in
  match mode with
  | Full -> full_plan Full ~total_sites:(count_alive_sites prog)
  | Sampled ->
    let total_sites = count_alive_sites prog in
    let iplan =
      Iplan.create ~kind:(Iplan.Sampled sample_period) ~nsites ~nfuncs
    in
    {
      mode = Sampled;
      iplan = Some iplan;
      directs = [];
      ext = None;
      total_sites;
      counted_sites = total_sites;
    }
  | Min ->
    (* Collect the weighted arcs of alive code: direct in-sites grouped
       per callee, and the external sites as one pool.  The site total
       rides along on the same sweep. *)
    let direct_in : (int * int) list array = Array.make (max nfuncs 1) [] in
    let ext_sites = ref [] in
    let has_ind = ref false in
    let total = ref 0 in
    Array.iter
      (fun (f : Il.func) ->
        if f.Il.alive then begin
          let depth = loop_depths f in
          Il.iter_sites
            (fun s ->
              incr total;
              let w = weight_of_depth depth.(s.Il.s_index) in
              match s.Il.s_kind with
              | Il.To_user callee ->
                if callee >= 0 && callee < nfuncs then
                  direct_in.(callee) <-
                    (s.Il.s_id, w) :: direct_in.(callee)
              | Il.To_extern _ -> ext_sites := (s.Il.s_id, w) :: !ext_sites
              | Il.Through_pointer -> has_ind := true)
            f
        end)
      prog.Il.funcs;
    let total_sites = !total in
    (* The materialised-address set only gates eligibility when an
       indirect site exists; without one, skip that whole body pass. *)
    let mat = if !has_ind then materialized prog else [||] in
    (* The max-weight in-arc of each eligible callee is elided; ties
       break to the lowest site id for determinism. *)
    let argmax sites =
      List.fold_left
        (fun best (s, w) ->
          match best with
          | None -> Some (s, w)
          | Some (bs, bw) ->
            if w > bw || (w = bw && s < bs) then Some (s, w) else best)
        None sites
    in
    let directs = ref [] in
    Array.iteri
      (fun callee in_sites ->
        let f = prog.Il.funcs.(callee) in
        let eligible = f.Il.alive && ((not !has_ind) || not mat.(callee)) in
        if eligible && in_sites <> [] then
          match argmax in_sites with
          | Some (site, _) ->
            let siblings =
              List.filter_map
                (fun (s, _) -> if s <> site then Some s else None)
                in_sites
            in
            directs :=
              {
                e_site = site;
                e_callee = callee;
                e_callee_is_main = callee = prog.Il.main;
                e_siblings = siblings;
              }
              :: !directs
          | None -> ())
      direct_in;
    let ext =
      match argmax !ext_sites with
      | Some (site, _) ->
        Some
          {
            x_site = site;
            x_others =
              List.filter_map
                (fun (s, _) -> if s <> site then Some s else None)
                !ext_sites;
          }
      | None -> None
    in
    let directs = !directs in
    if directs = [] && ext = None then
      (* Nothing elidable — behave exactly like the full plan, so the
         engines keep their plan-less fast path. *)
      full_plan Min ~total_sites
    else begin
      let iplan = Iplan.create ~kind:Iplan.Exact ~nsites ~nfuncs in
      List.iter
        (fun e ->
          iplan.Iplan.site_counted.(e.e_site) <- false;
          iplan.Iplan.site_scalar.(e.e_site) <- false;
          (* An indirect hit on a callee with an elided in-arc would
             make its inflow unattributable. *)
          iplan.Iplan.ind_ok.(e.e_callee) <- false)
        directs;
      (match ext with
      | Some x ->
        (* External elision keeps the scalars: the ext_calls total is
           the conservation law the inference solves against. *)
        iplan.Iplan.site_counted.(x.x_site) <- false
      | None -> ());
      let elided = List.length directs + match ext with Some _ -> 1 | None -> 0 in
      {
        mode = Min;
        iplan = Some iplan;
        directs;
        ext;
        total_sites;
        counted_sites = total_sites - elided;
      }
    end

let instrumented_fraction t =
  if t.total_sites = 0 then 1.
  else float_of_int t.counted_sites /. float_of_int t.total_sites

let poisoned t = match t.iplan with Some ip -> Iplan.poisoned ip | None -> false
