(** Profile serialisation — the on-disk half of the paper's "IMPACT-I
    Profiler to C Compiler interface", which "allows the profile
    information to be automatically used by the IMPACT-I C Compiler".

    The format is a line-oriented text file:

    {v
    impact-profile v4 <checksum> <full|min|sampled|->
    runs <n>
    totals <ils> <cts> <calls> <returns> <ext_calls> <max_stack>
    func <fid> <weight>      (one line per non-zero node weight)
    site <id> <weight>       (one line per non-zero arc weight)
    vsite <id> <other> <fid>:<weight> ...   (indirect-site value profile)
    v}

    Weights are averages over the run set and may be fractional.  The
    header's [<checksum>] is the {!program_checksum} of the program the
    profile was collected against ([-] when not recorded), so a stale
    profile is detected at load time.  The mode field records the
    instrumentation mode the profile was collected under, so an
    approximate [sampled] profile is never silently reused to answer a
    request for an exact one.

    Writers emit a v4 header only when the profile carries a value
    profile (some indirect site executed); otherwise a v3 header is
    emitted when they state a mode and the v2 header
    ([impact-profile v2 <checksum>]) is kept when they do not, which
    also keeps {!profile_checksum} byte-stable for profiles without
    indirect-call data.  v2/v3 files read back with an empty value
    profile; v2 files carry no mode and pass any [expect_mode]; v1
    files ([impact-profile 1]) are still read and carry neither
    checksum nor mode.

    All failure modes — unreadable file, malformed line,
    negative/overflowing count, unknown section, stale checksum or
    mode — are reported as typed {!Impact_support.Ierr.t} values (stage
    [Profile_io], severity [Degradable], recovery [Fallback_static]),
    never raw exceptions: array sizes requested by the file are bounds-
    checked before allocation.  The one deliberate exception is the
    value profile itself: malformed, truncated or out-of-bounds [vsite]
    data drops the whole value-profile component (devirtualization
    degrades to a no-op) while the rest of the profile still parses.
    Readers/writers carry the
    {!Impact_support.Fault.Profile_read}/[Profile_write] injection
    points. *)

(** [program_checksum prog] is the MD5 (hex) of the program's textual
    dump — the staleness fingerprint recorded in v2/v3 headers. *)
val program_checksum : Impact_il.Il.program -> string

(** [profile_checksum p] is the MD5 (hex) of the profile's canonical
    serialisation — the identity of the profile's content, for keying
    artifacts (cached inlining decisions) derived from it. *)
val profile_checksum : Profile.t -> string

(** [to_string ?checksum ?mode p] serialises a profile.  A profile with
    value data takes a v4 header ([?mode] defaulting to the unrecorded
    marker [-]); otherwise, with [?mode], a v3 header records the
    instrumentation mode and without it the v2 header is emitted
    unchanged.  [?checksum] defaults to [-]. *)
val to_string : ?checksum:string -> ?mode:Coverage.mode -> Profile.t -> string

(** [of_string ?expect_checksum ?expect_mode s] parses a serialised
    profile.  CRLF line endings and runs of spaces/tabs between fields
    are tolerated.  With [?expect_checksum], a v2/v3 header whose
    recorded checksum differs is rejected as stale; with [?expect_mode],
    a v3 header recording a different mode is rejected as stale (v1/v2
    headers and unrecorded [-] checksums pass either check).  Never
    raises: every failure is a typed [Error]. *)
val of_string :
  ?expect_checksum:string ->
  ?expect_mode:Coverage.mode ->
  string ->
  (Profile.t, Impact_support.Ierr.t) result

(** [of_string_exn] is {!of_string}, raising {!Impact_support.Ierr.Error}. *)
val of_string_exn :
  ?expect_checksum:string -> ?expect_mode:Coverage.mode -> string -> Profile.t

(** [save ?checksum ?mode path p] writes [to_string p] to [path]
    atomically: the bytes go to [path ^ ".tmp"] first and are renamed
    over [path], so a crash mid-write never leaves a truncated profile
    behind.
    @raise Impact_support.Ierr.Error when the file cannot be written. *)
val save : ?checksum:string -> ?mode:Coverage.mode -> string -> Profile.t -> unit

(** [load ?expect_checksum ?expect_mode path] reads and parses a profile
    file.  Never raises: an unreadable file or malformed content is a
    typed [Error]. *)
val load :
  ?expect_checksum:string ->
  ?expect_mode:Coverage.mode ->
  string ->
  (Profile.t, Impact_support.Ierr.t) result

(** [load_exn] is {!load}, raising {!Impact_support.Ierr.Error}. *)
val load_exn :
  ?expect_checksum:string -> ?expect_mode:Coverage.mode -> string -> Profile.t
