(** Profile serialisation — the on-disk half of the paper's "IMPACT-I
    Profiler to C Compiler interface", which "allows the profile
    information to be automatically used by the IMPACT-I C Compiler".

    The format is a line-oriented text file:

    {v
    impact-profile 1
    runs <n>
    totals <ils> <cts> <calls> <returns> <ext_calls> <max_stack>
    func <fid> <weight>      (one line per non-zero node weight)
    site <id> <weight>       (one line per non-zero arc weight)
    v}

    Weights are averages over the run set and may be fractional. *)

(** Raised by {!of_string} on malformed input, with a description. *)
exception Parse_error of string

(** [to_string p] serialises a profile. *)
val to_string : Profile.t -> string

(** [of_string s] parses a serialised profile.  CRLF line endings and
    runs of spaces/tabs between fields are tolerated.
    @raise Parse_error on malformed input. *)
val of_string : string -> Profile.t

(** [save path p] writes [to_string p] to [path] atomically: the bytes
    go to [path ^ ".tmp"] first and are renamed over [path], so a crash
    mid-write never leaves a truncated profile behind. *)
val save : string -> Profile.t -> unit

(** [load path] reads and parses a profile file.
    @raise Parse_error on malformed content.
    @raise Sys_error if the file cannot be read. *)
val load : string -> Profile.t
