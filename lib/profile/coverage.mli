(** Minimum-coverage instrumentation planning (the Knuth spanning-
    structure result on the call/arc flow graph).

    A plan decides, per call site, whether the engines count it.  Under
    [Min], at most one incoming arc per function — the statically
    hottest, seeded by a loop-nesting estimate of the caller — plus at
    most one external site globally go uninstrumented; Kirchhoff
    conservation at each function's inflow (activation counts are
    always measured) makes every elided count recoverable exactly by
    {!Inference}, whatever the recursion structure, because each
    function's inflow equation holds exactly one elided unknown.

    [Sampled] gates every per-site store on a fuel phase with period
    {!sample_period} instead: cheap for programs too hot to count, but
    the reconstruction is approximate and reported as such.

    Plans are immutable and shared read-only across profiling pool
    domains; build one per program per profiling call, never per run
    ({!plans_built_count} observes this). *)

type mode =
  | Full  (** count every site — the historical behaviour *)
  | Min  (** spanning-structure elision; inference is bit-exact *)
  | Sampled  (** fuel-phase sampling; approximate, with a coverage figure *)

val mode_name : mode -> string

(** [mode_of_string s] parses ["full"] / ["min"] / ["sampled"]. *)
val mode_of_string : string -> mode option

val all_modes : mode list

(** The fuel-phase period of [Sampled] plans (prime, to avoid aliasing
    with loop periodicities). *)
val sample_period : int

type direct_elision = {
  e_site : int;  (** the uninstrumented arc *)
  e_callee : int;
  e_callee_is_main : bool;
      (** main also receives the virtual entry arc, once per run *)
  e_siblings : int list;
      (** the callee's measured other direct in-sites *)
}

type ext_elision = {
  x_site : int;
  x_others : int list;  (** every other external site in alive code *)
}

type t = {
  mode : mode;
  iplan : Impact_interp.Iplan.t option;
      (** what the engines consume; [None] = count everything *)
  directs : direct_elision list;
  ext : ext_elision option;
  total_sites : int;  (** call sites in alive code *)
  counted_sites : int;  (** sites whose per-site store the plan keeps *)
}

(** [build prog mode] constructs the plan for one program.  [Min] plans
    elide a strict subset of sites whenever the program has any
    elidable arc; indirect sites are never elided, and functions whose
    address is materialised anywhere are ineligible when the program
    contains indirect calls (so every legitimate indirect target keeps
    fully measured inflow — a fabricated-address hit is flagged on the
    plan and the driver re-profiles fully). *)
val build : Impact_il.Il.program -> mode -> t

(** [instrumented_fraction t] — counted sites over total alive sites
    (1.0 when nothing is elided or the program has no sites). *)
val instrumented_fraction : t -> float

(** [poisoned t] — did a run under this plan take an indirect call that
    breaks inference?  The profiling driver must then re-run fully. *)
val poisoned : t -> bool

(** How many plans {!build} has constructed, ever (for tests asserting
    plans are built once per program, not once per run). *)
val plans_built_count : unit -> int
