(** Flow inference — the solving half of minimum-coverage profiling.

    Given the aggregated counters of a sweep run under a
    {!Coverage.t} plan, fills in every elided count by Kirchhoff
    conservation (diagonal system: each function carries at most one
    elided in-arc, each equation one unknown) and restores the
    run-level calls scalar.  For [Min] plans the patched counters are
    bit-for-bit identical to full instrumentation — these are
    deterministic interpreter counts, not samples.  For [Sampled] plans
    the per-site counts are scaled by {!Coverage.sample_period} and a
    coverage figure is reported; the result is approximate. *)

type stats = {
  inferred_sites : int;  (** elided sites whose counts were reconstructed *)
  sample_coverage : float option;
      (** [Sampled] only: scaled sample mass over the exact call total,
          in [0, 1] — how much of the dynamic call volume the samples
          explain *)
}

(** [apply plan ~nruns acc] mutates [acc] in place.  [nruns] is the
    number of runs aggregated into [acc] (main's virtual entry arc).
    Caller must ensure the plan is not {!Coverage.poisoned} first. *)
val apply : Coverage.t -> nruns:int -> Impact_interp.Counters.t -> stats
