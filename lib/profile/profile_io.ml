(* Profile serialisation.

   Current format (v4) adds the per-indirect-site value profile
   ("vsite" lines) on top of the v3 mode extension:

     impact-profile v4 <md5-of-program-dump | -> <full|min|sampled | ->
     ...
     vsite <site> <other-weight> <fid>:<weight> ...

   A v4 header is emitted only when the profile actually carries value
   data (some indirect site executed); otherwise the previous headers
   are kept — v3 when the writer states a mode:

     impact-profile v3 <md5-of-program-dump | -> <full|min|sampled>

   and v2 when it does not:

     impact-profile v2 <md5-of-program-dump | ->

   — which keeps {!profile_checksum} (and every cache artifact keyed by
   it) byte-stable for every profile without indirect-call data.  v3/v2
   files read back with an empty value profile (they predate it, and an
   empty value profile simply disables devirtualization); v1 files
   ("impact-profile 1") are still read and carry neither checksum nor
   mode, so staleness cannot be detected for them.

   "vsite" lines are deliberately forgiving in a different way from the
   rest of the format: a malformed, truncated or out-of-bounds value
   profile drops the *whole* value-profile component (degrading devirt
   to a no-op) instead of failing the parse — the arc/node weights are
   still trustworthy and the pass that consumes vsites is an optional
   speculation.

   Every failure mode (unreadable file, malformed line, negative or
   overflowing count, unknown section, checksum mismatch) surfaces as a
   typed {!Impact_support.Ierr.t} with stage [Profile_io], severity
   [Degradable] and recovery [Fallback_static]: a degrading driver may
   re-profile or fall back to uniform static weights (every arc below
   the paper's weight threshold — no inlining). *)

module Ierr = Impact_support.Ierr
module Fault = Impact_support.Fault

let magic_v2 = "impact-profile v2"
let magic_v3 = "impact-profile v3"
let magic_v4 = "impact-profile v4"

(* Bound on the targets a single vsite line may carry — generous
   against the writer's top-K truncation, tight against hostile
   input. *)
let max_vsite_targets = 64

(* Hard ceilings on the array sizes a profile file can request, so a
   hostile or corrupt "counts" line cannot drive [Array.make] into
   gigabytes (or an [Invalid_argument] crash). *)
let max_entries = 10_000_000
let max_runs = 1_000_000_000

let fail fmt =
  Ierr.error ~severity:Ierr.Degradable ~recovery:Ierr.Fallback_static
    Ierr.Profile_io fmt

let program_checksum prog = Digest.to_hex (Digest.string (Impact_il.Il_pp.dump prog))

let to_string ?checksum ?mode (p : Profile.t) =
  let buf = Buffer.create 1024 in
  (if p.Profile.vsites <> [] then begin
     (* Value data present: v4 header, with "-" standing in for an
        unstated mode exactly like an unrecorded checksum. *)
     Buffer.add_string buf magic_v4;
     Buffer.add_char buf ' ';
     Buffer.add_string buf (match checksum with Some c -> c | None -> "-");
     Buffer.add_char buf ' ';
     Buffer.add_string buf
       (match mode with Some m -> Coverage.mode_name m | None -> "-")
   end
   else
     match mode with
     | None ->
       (* No mode stated: keep the v2 header byte-for-byte, so
          [profile_checksum] — and every cached artifact keyed by it —
          is unchanged by the mode extension. *)
       Buffer.add_string buf magic_v2;
       Buffer.add_char buf ' ';
       Buffer.add_string buf (match checksum with Some c -> c | None -> "-")
     | Some m ->
       Buffer.add_string buf magic_v3;
       Buffer.add_char buf ' ';
       Buffer.add_string buf (match checksum with Some c -> c | None -> "-");
       Buffer.add_char buf ' ';
       Buffer.add_string buf (Coverage.mode_name m));
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Printf.sprintf "runs %d\n" p.Profile.nruns);
  Buffer.add_string buf
    (Printf.sprintf "totals %.17g %.17g %.17g %.17g %.17g %.17g\n" p.Profile.avg_ils
       p.Profile.avg_cts p.Profile.avg_calls p.Profile.avg_returns
       p.Profile.avg_ext_calls p.Profile.avg_max_stack);
  Buffer.add_string buf
    (Printf.sprintf "counts %d %d\n"
       (Array.length p.Profile.func_weight)
       (Array.length p.Profile.site_weight));
  Array.iteri
    (fun fid w ->
      if w <> 0. then Buffer.add_string buf (Printf.sprintf "func %d %.17g\n" fid w))
    p.Profile.func_weight;
  Array.iteri
    (fun site w ->
      if w <> 0. then Buffer.add_string buf (Printf.sprintf "site %d %.17g\n" site w))
    p.Profile.site_weight;
  List.iter
    (fun (v : Profile.vsite) ->
      Buffer.add_string buf
        (Printf.sprintf "vsite %d %.17g" v.Profile.vs_site v.Profile.vs_other);
      List.iter
        (fun (t : Profile.vtarget) ->
          Buffer.add_string buf
            (Printf.sprintf " %d:%.17g" t.Profile.vt_fid t.Profile.vt_weight))
        v.Profile.vs_targets;
      Buffer.add_char buf '\n')
    p.Profile.vsites;
  Buffer.contents buf

(* Identity of a profile's *content*, for keying artifacts derived from
   it (the cached selection/expansion stage): two profiles with the
   same checksum steer the inliner identically, because the checksum
   covers the full canonical serialisation. *)
let profile_checksum p = Digest.to_hex (Digest.string (to_string p))

(* Tolerate files that went through DOS line endings or had their
   separators mangled (editors, diff tools): strip a trailing CR and
   split fields on any run of spaces/tabs. *)
let strip_cr l =
  let n = String.length l in
  if n > 0 && l.[n - 1] = '\r' then String.sub l 0 (n - 1) else l

let split_fields l =
  String.split_on_char ' ' l
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun f -> f <> "")

(* A weight must be a finite non-negative float: counts of events cannot
   be negative, and NaN/infinity would poison every comparison the
   selector makes. *)
let weight_of_string line w =
  match float_of_string_opt w with
  | Some v when Float.is_finite v && v >= 0. -> v
  | Some _ -> fail "negative or non-finite weight in %S" line
  | None -> fail "bad weight %S in %S" w line

let parse ?expect_checksum ?expect_mode s =
  let lines =
    String.split_on_char '\n' s
    |> List.map strip_cr
    |> List.filter (fun l -> String.trim l <> "")
  in
  let header, rest =
    match lines with
    | header :: rest -> (split_fields header, rest)
    | [] -> fail "empty profile"
  in
  let check_checksum checksum =
    match expect_checksum with
    | Some expected when checksum <> "-" && checksum <> expected ->
      fail "stale profile: checksum %s does not match program %s" checksum
        expected
    | _ -> ()
  in
  (match header with
  | [ "impact-profile"; "v4"; checksum; mode ] -> (
    check_checksum checksum;
    if mode <> "-" then
      (* "-" = unstated mode, undetectable like a "-" checksum. *)
      match Coverage.mode_of_string mode with
      | None -> fail "bad profile mode %S in header" mode
      | Some recorded -> (
        match expect_mode with
        | Some wanted when recorded <> wanted ->
          fail "stale profile: mode %s does not match requested %s"
            (Coverage.mode_name recorded) (Coverage.mode_name wanted)
        | _ -> ()))
  | [ "impact-profile"; "v3"; checksum; mode ] -> (
    check_checksum checksum;
    match Coverage.mode_of_string mode with
    | None -> fail "bad profile mode %S in header" mode
    | Some recorded -> (
      match expect_mode with
      | Some wanted when recorded <> wanted ->
        fail "stale profile: mode %s does not match requested %s"
          (Coverage.mode_name recorded) (Coverage.mode_name wanted)
      | _ -> ()))
  | [ "impact-profile"; "v2"; checksum ] ->
    (* v2 back-compat: no mode recorded (the format predates modes), so
       — like an unrecorded "-" checksum — mode staleness is
       undetectable and the file passes any [expect_mode]. *)
    check_checksum checksum
  | [ "impact-profile"; "1" ] ->
    (* v1 back-compat: no checksum recorded, staleness undetectable. *)
    ()
  | _ -> fail "missing %S header" magic_v2);
  let nruns = ref 0 in
  let totals = ref None in
  let sizes = ref None in
  let funcs = ref [] in
  let sites = ref [] in
  let vsites = ref [] in
  (* Value-profile lines degrade as a unit: the first malformed one
     poisons the whole component (see the header comment) — the parse
     keeps going and the profile reads back without value data. *)
  let vsites_ok = ref true in
  let parse_vtarget tok =
    match String.index_opt tok ':' with
    | None -> None
    | Some i -> (
      let fid = String.sub tok 0 i in
      let w = String.sub tok (i + 1) (String.length tok - i - 1) in
      match (int_of_string_opt fid, float_of_string_opt w) with
      | Some fid, Some w when fid >= 0 && Float.is_finite w && w >= 0. ->
        Some { Profile.vt_fid = fid; vt_weight = w }
      | _, _ -> None)
  in
  let parse_vsite site other targets =
    match (int_of_string_opt site, float_of_string_opt other) with
    | Some site, Some other
      when site >= 0
           && Float.is_finite other
           && other >= 0.
           && List.length targets <= max_vsite_targets -> (
      let parsed = List.map parse_vtarget targets in
      if List.exists Option.is_none parsed then None
      else
        match List.filter_map Fun.id parsed with
        | [] -> None (* a vsite records at least one resolved target *)
        | vs_targets ->
          Some { Profile.vs_site = site; vs_targets; vs_other = other })
    | _, _ -> None
  in
  List.iter
    (fun line ->
      match split_fields line with
      | [ "runs"; n ] -> (
        match int_of_string_opt n with
        | Some n when n > 0 && n <= max_runs -> nruns := n
        | Some _ | None -> fail "bad run count %S" n)
      | [ "totals"; a; b; c; d; e; f ] -> (
        match List.map (weight_of_string line) [ a; b; c; d; e; f ] with
        | [ a; b; c; d; e; f ] -> totals := Some (a, b, c, d, e, f)
        | _ -> assert false)
      | [ "counts"; nf; ns ] -> (
        match (int_of_string_opt nf, int_of_string_opt ns) with
        | Some nf, Some ns
          when nf >= 0 && ns >= 0 && nf <= max_entries && ns <= max_entries ->
          sizes := Some (nf, ns)
        | Some nf, Some ns when nf >= 0 && ns >= 0 ->
          fail "counts line requests %d/%d entries (limit %d)" nf ns max_entries
        | _, _ -> fail "bad counts line %S" line)
      | [ "func"; fid; w ] -> (
        match int_of_string_opt fid with
        | Some fid when fid >= 0 ->
          funcs := (fid, weight_of_string line w) :: !funcs
        | Some _ | None -> fail "bad func line %S" line)
      | [ "site"; id; w ] -> (
        match int_of_string_opt id with
        | Some id when id >= 0 -> sites := (id, weight_of_string line w) :: !sites
        | Some _ | None -> fail "bad site line %S" line)
      | "vsite" :: site :: other :: targets ->
        if !vsites_ok then (
          match parse_vsite site other targets with
          | Some v -> vsites := v :: !vsites
          | None -> vsites_ok := false)
      | [ "vsite" ] | [ "vsite"; _ ] ->
        (* Truncated vsite line: drop the component, keep the parse. *)
        vsites_ok := false
      | section :: _ -> fail "unknown section %S in line %S" section line
      | [] -> assert false (* blank lines were filtered *))
    rest;
  let nf, ns =
    match !sizes with
    | Some sizes -> sizes
    | None -> fail "missing counts line"
  in
  let a, b, c, d, e, f =
    match !totals with
    | Some t -> t
    | None -> fail "missing totals line"
  in
  if !nruns = 0 then fail "missing runs line";
  let func_weight = Array.make (max nf 1) 0. in
  let site_weight = Array.make (max ns 1) 0. in
  List.iter
    (fun (fid, w) ->
      if fid >= nf then fail "func id %d out of bounds %d" fid nf;
      func_weight.(fid) <- w)
    !funcs;
  List.iter
    (fun (id, w) ->
      if id >= ns then fail "site id %d out of bounds %d" id ns;
      site_weight.(id) <- w)
    !sites;
  (* Bounds and uniqueness for the value profile are checked against
     the counts line; any violation is stale/corrupt value data and —
     unlike the weight sections — drops the component, not the file. *)
  let vsites =
    if not !vsites_ok then []
    else begin
      let vs =
        List.sort
          (fun (x : Profile.vsite) y -> compare x.Profile.vs_site y.Profile.vs_site)
          !vsites
      in
      let ok =
        List.for_all
          (fun (v : Profile.vsite) ->
            v.Profile.vs_site < ns
            && List.for_all (fun t -> t.Profile.vt_fid < nf) v.Profile.vs_targets)
          vs
        &&
        match vs with
        | [] -> true
        | first :: rest ->
          fst
            (List.fold_left
               (fun (distinct, prev) (v : Profile.vsite) ->
                 (distinct && v.Profile.vs_site > prev, v.Profile.vs_site))
               (true, first.Profile.vs_site)
               rest)
      in
      if ok then vs else []
    end
  in
  {
    Profile.nruns = !nruns;
    func_weight;
    site_weight;
    vsites;
    avg_ils = a;
    avg_cts = b;
    avg_calls = c;
    avg_returns = d;
    avg_ext_calls = e;
    avg_max_stack = f;
  }

let of_string ?expect_checksum ?expect_mode s =
  match
    Fault.hit Fault.Profile_read;
    parse ?expect_checksum ?expect_mode s
  with
  | p -> Ok p
  | exception Ierr.Error e -> Error e
  | exception e ->
    (* Catch-all floor: whatever goes wrong while parsing, the caller
       sees a typed profile-io error, never a raw exception. *)
    Error
      (Ierr.of_exn ~severity:Ierr.Degradable ~recovery:Ierr.Fallback_static
         Ierr.Profile_io e)

let of_string_exn ?expect_checksum ?expect_mode s =
  match of_string ?expect_checksum ?expect_mode s with
  | Ok p -> p
  | Error e -> raise (Ierr.Error e)

(* Write-to-temp then rename (via Atomic_io), so a crash mid-write never
   leaves a truncated profile at [path]: the reader sees either the old
   file or the complete new one. *)
let save ?checksum ?mode path p =
  match
    Fault.hit Fault.Profile_write;
    Impact_support.Atomic_io.write_string path (to_string ?checksum ?mode p)
  with
  | () -> ()
  | exception (Ierr.Error _ as e) -> raise e
  | exception e ->
    raise
      (Ierr.Error
         (Ierr.of_exn ~severity:Ierr.Degradable ~recovery:Ierr.Abort
            Ierr.Profile_io e))

let load ?expect_checksum ?expect_mode path =
  match
    let ic = open_in path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with
  | s -> of_string ?expect_checksum ?expect_mode s
  | exception e ->
    Error
      (Ierr.of_exn ~severity:Ierr.Degradable ~recovery:Ierr.Fallback_static
         Ierr.Profile_io e)

let load_exn ?expect_checksum ?expect_mode path =
  match load ?expect_checksum ?expect_mode path with
  | Ok p -> p
  | Error e -> raise (Ierr.Error e)
