exception Parse_error of string

let fail fmt = Printf.ksprintf (fun msg -> raise (Parse_error msg)) fmt

let magic = "impact-profile 1"

let to_string (p : Profile.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf magic;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Printf.sprintf "runs %d\n" p.Profile.nruns);
  Buffer.add_string buf
    (Printf.sprintf "totals %.17g %.17g %.17g %.17g %.17g %.17g\n" p.Profile.avg_ils
       p.Profile.avg_cts p.Profile.avg_calls p.Profile.avg_returns
       p.Profile.avg_ext_calls p.Profile.avg_max_stack);
  Buffer.add_string buf
    (Printf.sprintf "counts %d %d\n"
       (Array.length p.Profile.func_weight)
       (Array.length p.Profile.site_weight));
  Array.iteri
    (fun fid w ->
      if w <> 0. then Buffer.add_string buf (Printf.sprintf "func %d %.17g\n" fid w))
    p.Profile.func_weight;
  Array.iteri
    (fun site w ->
      if w <> 0. then Buffer.add_string buf (Printf.sprintf "site %d %.17g\n" site w))
    p.Profile.site_weight;
  Buffer.contents buf

(* Tolerate files that went through DOS line endings or had their
   separators mangled (editors, diff tools): strip a trailing CR and
   split fields on any run of spaces/tabs. *)
let strip_cr l =
  let n = String.length l in
  if n > 0 && l.[n - 1] = '\r' then String.sub l 0 (n - 1) else l

let split_fields l =
  String.split_on_char ' ' l
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun f -> f <> "")

let of_string s =
  let lines =
    String.split_on_char '\n' s
    |> List.map strip_cr
    |> List.filter (fun l -> String.trim l <> "")
  in
  match lines with
  | header :: rest when split_fields header = [ "impact-profile"; "1" ] ->
    let nruns = ref 0 in
    let totals = ref None in
    let sizes = ref None in
    let funcs = ref [] in
    let sites = ref [] in
    List.iter
      (fun line ->
        match split_fields line with
        | [ "runs"; n ] -> (
          match int_of_string_opt n with
          | Some n when n > 0 -> nruns := n
          | Some _ | None -> fail "bad run count %S" n)
        | [ "totals"; a; b; c; d; e; f ] -> (
          match List.map float_of_string_opt [ a; b; c; d; e; f ] with
          | [ Some a; Some b; Some c; Some d; Some e; Some f ] ->
            totals := Some (a, b, c, d, e, f)
          | _ -> fail "bad totals line %S" line)
        | [ "counts"; nf; ns ] -> (
          match (int_of_string_opt nf, int_of_string_opt ns) with
          | Some nf, Some ns when nf >= 0 && ns >= 0 -> sizes := Some (nf, ns)
          | _, _ -> fail "bad counts line %S" line)
        | [ "func"; fid; w ] -> (
          match (int_of_string_opt fid, float_of_string_opt w) with
          | Some fid, Some w when fid >= 0 -> funcs := (fid, w) :: !funcs
          | _, _ -> fail "bad func line %S" line)
        | [ "site"; id; w ] -> (
          match (int_of_string_opt id, float_of_string_opt w) with
          | Some id, Some w when id >= 0 -> sites := (id, w) :: !sites
          | _, _ -> fail "bad site line %S" line)
        | _ -> fail "unrecognised line %S" line)
      rest;
    let nf, ns =
      match !sizes with
      | Some sizes -> sizes
      | None -> fail "missing counts line"
    in
    let a, b, c, d, e, f =
      match !totals with
      | Some t -> t
      | None -> fail "missing totals line"
    in
    if !nruns = 0 then fail "missing runs line";
    let func_weight = Array.make (max nf 1) 0. in
    let site_weight = Array.make (max ns 1) 0. in
    List.iter
      (fun (fid, w) ->
        if fid >= nf then fail "func id %d out of bounds %d" fid nf;
        func_weight.(fid) <- w)
      !funcs;
    List.iter
      (fun (id, w) ->
        if id >= ns then fail "site id %d out of bounds %d" id ns;
        site_weight.(id) <- w)
      !sites;
    {
      Profile.nruns = !nruns;
      func_weight;
      site_weight;
      avg_ils = a;
      avg_cts = b;
      avg_calls = c;
      avg_returns = d;
      avg_ext_calls = e;
      avg_max_stack = f;
    }
  | _ -> fail "missing %S header" magic

(* Write-to-temp then rename, so a crash mid-write never leaves a
   truncated profile at [path]: the reader sees either the old file or
   the complete new one. *)
let save path p =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  (try
     output_string oc (to_string p);
     close_out oc
   with exn ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise exn);
  Sys.rename tmp path

let load path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  of_string s
