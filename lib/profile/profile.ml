type vtarget = {
  vt_fid : int;
  vt_weight : float;
}

type vsite = {
  vs_site : int;
  vs_targets : vtarget list;
  vs_other : float;
}

type t = {
  nruns : int;
  func_weight : float array;
  site_weight : float array;
  vsites : vsite list;
  avg_ils : float;
  avg_cts : float;
  avg_calls : float;
  avg_returns : float;
  avg_ext_calls : float;
  avg_max_stack : float;
}

(* Top-K truncation bound for per-site target histograms.  Real
   indirect sites are dominated by one or two targets (that skew is
   what devirt exploits); everything past the K hottest is folded into
   [vs_other], which still lets the dominance fraction be computed
   exactly. *)
let value_profile_top_k = 4

let vsites_of_counters ~avg (c : Impact_interp.Counters.t) =
  let out = ref [] in
  Array.iteri
    (fun site row ->
      if Array.length row > 0 then begin
        let total = Array.fold_left ( + ) 0 row in
        if total > 0 then begin
          let pairs = ref [] in
          Array.iteri (fun fid n -> if n > 0 then pairs := (fid, n) :: !pairs) row;
          let sorted =
            List.sort
              (fun (f1, n1) (f2, n2) ->
                if n1 <> n2 then compare n2 n1 else compare f1 f2)
              !pairs
          in
          let rec take k = function
            | [] -> []
            | _ when k <= 0 -> []
            | x :: tl -> x :: take (k - 1) tl
          in
          let top = take value_profile_top_k sorted in
          let top_sum = List.fold_left (fun a (_, n) -> a + n) 0 top in
          out :=
            {
              vs_site = site;
              vs_targets =
                List.map (fun (fid, n) -> { vt_fid = fid; vt_weight = avg n }) top;
              vs_other = avg (total - top_sum);
            }
            :: !out
        end
      end)
    c.Impact_interp.Counters.ind_counts;
  List.rev !out

let of_counters ~nruns ~max_stacks (c : Impact_interp.Counters.t) =
  if nruns <= 0 then invalid_arg "Profile.of_counters: nruns must be positive";
  let n = float_of_int nruns in
  let avg x = float_of_int x /. n in
  {
    nruns;
    func_weight = Array.map avg c.Impact_interp.Counters.func_counts;
    site_weight = Array.map avg c.Impact_interp.Counters.site_counts;
    vsites = vsites_of_counters ~avg c;
    avg_ils = avg c.Impact_interp.Counters.ils;
    avg_cts = avg c.Impact_interp.Counters.cts;
    avg_calls = avg c.Impact_interp.Counters.calls;
    avg_returns = avg c.Impact_interp.Counters.returns;
    avg_ext_calls = avg c.Impact_interp.Counters.ext_calls;
    avg_max_stack =
      (List.fold_left (fun acc s -> acc +. float_of_int s) 0. max_stacks /. n);
  }

(* The graceful-degradation profile: one nominal run, every weight zero.
   Under the paper's "< 10 calls per run" rule every arc then classifies
   as weight-below-threshold, so the inliner selects nothing and the
   program is exactly the no-inlining baseline. *)
let static_uniform ~nfuncs ~nsites =
  {
    nruns = 1;
    func_weight = Array.make (max nfuncs 1) 0.;
    site_weight = Array.make (max nsites 1) 0.;
    vsites = [];
    avg_ils = 0.;
    avg_cts = 0.;
    avg_calls = 0.;
    avg_returns = 0.;
    avg_ext_calls = 0.;
    avg_max_stack = 0.;
  }

let func_weight p fid =
  if fid >= 0 && fid < Array.length p.func_weight then p.func_weight.(fid) else 0.

let site_weight p site =
  if site >= 0 && site < Array.length p.site_weight then p.site_weight.(site) else 0.

let vsite p site = List.find_opt (fun v -> v.vs_site = site) p.vsites

let vsite_total v =
  List.fold_left (fun acc t -> acc +. t.vt_weight) v.vs_other v.vs_targets

(* The devirt question: does one target dominate this indirect site?
   Returns the hottest recorded target, its average per-run count and
   its share of the site's total traffic (top-K truncation keeps the
   denominator exact because the tail is folded into [vs_other]). *)
let dominant_target p site =
  match vsite p site with
  | None -> None
  | Some v -> (
    match v.vs_targets with
    | [] -> None
    | t :: _ ->
      let total = vsite_total v in
      if total <= 0. then None
      else Some (t.vt_fid, t.vt_weight, t.vt_weight /. total))

(* Extend (and overwrite) arc weights for sites created after profiling
   — devirt's fresh direct sites.  [site_weight] is bounds-checked, so
   without this the selector would see a speculated arc as zero-weight
   and reject it as below-threshold. *)
let with_site_weight_overrides p overrides =
  let top =
    List.fold_left
      (fun m (s, _) -> max m (s + 1))
      (Array.length p.site_weight) overrides
  in
  let sw = Array.make (max top 1) 0. in
  Array.blit p.site_weight 0 sw 0 (Array.length p.site_weight);
  List.iter (fun (s, w) -> if s >= 0 then sw.(s) <- Float.max 0. w) overrides;
  { p with site_weight = sw }

let to_string p =
  Printf.sprintf "profile over %d run(s): ILs=%.0f CTs=%.0f calls=%.0f ext=%.0f"
    p.nruns p.avg_ils p.avg_cts p.avg_calls p.avg_ext_calls
