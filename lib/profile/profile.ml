type t = {
  nruns : int;
  func_weight : float array;
  site_weight : float array;
  avg_ils : float;
  avg_cts : float;
  avg_calls : float;
  avg_returns : float;
  avg_ext_calls : float;
  avg_max_stack : float;
}

let of_counters ~nruns ~max_stacks (c : Impact_interp.Counters.t) =
  if nruns <= 0 then invalid_arg "Profile.of_counters: nruns must be positive";
  let n = float_of_int nruns in
  let avg x = float_of_int x /. n in
  {
    nruns;
    func_weight = Array.map avg c.Impact_interp.Counters.func_counts;
    site_weight = Array.map avg c.Impact_interp.Counters.site_counts;
    avg_ils = avg c.Impact_interp.Counters.ils;
    avg_cts = avg c.Impact_interp.Counters.cts;
    avg_calls = avg c.Impact_interp.Counters.calls;
    avg_returns = avg c.Impact_interp.Counters.returns;
    avg_ext_calls = avg c.Impact_interp.Counters.ext_calls;
    avg_max_stack =
      (List.fold_left (fun acc s -> acc +. float_of_int s) 0. max_stacks /. n);
  }

(* The graceful-degradation profile: one nominal run, every weight zero.
   Under the paper's "< 10 calls per run" rule every arc then classifies
   as weight-below-threshold, so the inliner selects nothing and the
   program is exactly the no-inlining baseline. *)
let static_uniform ~nfuncs ~nsites =
  {
    nruns = 1;
    func_weight = Array.make (max nfuncs 1) 0.;
    site_weight = Array.make (max nsites 1) 0.;
    avg_ils = 0.;
    avg_cts = 0.;
    avg_calls = 0.;
    avg_returns = 0.;
    avg_ext_calls = 0.;
    avg_max_stack = 0.;
  }

let func_weight p fid =
  if fid >= 0 && fid < Array.length p.func_weight then p.func_weight.(fid) else 0.

let site_weight p site =
  if site >= 0 && site < Array.length p.site_weight then p.site_weight.(site) else 0.

let to_string p =
  Printf.sprintf "profile over %d run(s): ILs=%.0f CTs=%.0f calls=%.0f ext=%.0f"
    p.nruns p.avg_ils p.avg_cts p.avg_calls p.avg_ext_calls
