(* Flow inference: reconstruct the counts a minimum-coverage plan left
   unmeasured, on the aggregated counters of a profiling sweep.

   For an elided direct arc into callee f:

     C(arc) = F(f) - [f = main] * nruns - sum of f's measured in-sites

   where F(f) is the activation count the engines always record at
   entry.  Each function has at most one elided in-arc, so every
   equation has exactly one unknown — a diagonal system, solved
   independently per arc.  The elided arcs also skipped their run-level
   [calls] scalar bump, so the recovered counts are added back.

   For the (single, global) elided external site:

     C(site) = ext_calls - sum of the other external sites' counts

   — external elision keeps all scalar bumps, so [ext_calls] still
   conserves the total over every external site.

   Both reconstructions are integer arithmetic on deterministic
   interpreter counts: the patched counters are bit-for-bit what full
   instrumentation would have produced (the test suite pins this
   against the oracle on every benchmark and on generated programs).

   Sampled plans are different in kind: every per-site store was gated
   on a fuel phase, so the counts are scaled back up by the period and
   reported with a coverage figure — approximate by construction. *)

module Counters = Impact_interp.Counters

type stats = {
  inferred_sites : int;
  sample_coverage : float option;
      (* Sampled only: scaled sample mass over the exact call total *)
}

let apply (plan : Coverage.t) ~nruns (acc : Counters.t) =
  match plan.Coverage.mode with
  | Coverage.Full -> { inferred_sites = 0; sample_coverage = None }
  | Coverage.Min ->
    List.iter
      (fun (e : Coverage.direct_elision) ->
        let entry = if e.Coverage.e_callee_is_main then nruns else 0 in
        let inflow = acc.Counters.func_counts.(e.Coverage.e_callee) - entry in
        let measured =
          List.fold_left
            (fun sum s -> sum + acc.Counters.site_counts.(s))
            0 e.Coverage.e_siblings
        in
        let count = inflow - measured in
        acc.Counters.site_counts.(e.Coverage.e_site) <- count;
        (* The elided arc skipped its run-level calls bump too. *)
        acc.Counters.calls <- acc.Counters.calls + count)
      plan.Coverage.directs;
    (match plan.Coverage.ext with
    | Some x ->
      let measured =
        List.fold_left
          (fun sum s -> sum + acc.Counters.site_counts.(s))
          0 x.Coverage.x_others
      in
      acc.Counters.site_counts.(x.Coverage.x_site) <-
        acc.Counters.ext_calls - measured
    | None -> ());
    {
      inferred_sites =
        List.length plan.Coverage.directs
        + (match plan.Coverage.ext with Some _ -> 1 | None -> 0);
      sample_coverage = None;
    }
  | Coverage.Sampled ->
    let period = Coverage.sample_period in
    let sc = acc.Counters.site_counts in
    let scaled = ref 0 in
    for i = 0 to Array.length sc - 1 do
      let s = sc.(i) * period in
      sc.(i) <- s;
      scaled := !scaled + s
    done;
    let coverage =
      if acc.Counters.calls <= 0 then 0.
      else Float.min 1. (float_of_int !scaled /. float_of_int acc.Counters.calls)
    in
    { inferred_sites = 0; sample_coverage = Some coverage }
