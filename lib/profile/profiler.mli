(** Running a program over its input set to collect a profile.

    This is the IMPACT-I "Profiler to C Compiler interface": the same
    interpreter that measures final results also produces the node/arc
    weights that drive inline expansion. *)

(** The outcome of profiling: the averaged profile plus each run's raw
    result, so callers can also check outputs or aggregate differently.
    [failures] is empty except in tolerant mode, where it records the
    input indices whose runs failed even after one retry. *)
type result = {
  profile : Profile.t;
  runs : Impact_interp.Machine.outcome list;
  failures : (int * exn) list;
}

(** [profile ?budget ?fuel ?obs ?engine ?jobs ?keep_outputs ?tolerant
    prog ~inputs] runs [prog] once per input and averages.  [obs] is
    handed to every {!Impact_interp.Machine.run} so run-level counters
    flow through the (mutex-protected) sink.

    @param budget per-run wall-clock deadline / output watermark,
      forwarded to every run ({!Impact_interp.Rt.budget}); with fuel it
      makes every run finite, so a hung run cannot wedge a worker
    @param engine interpreter core, forwarded to every run
    @param jobs when > 1, runs execute on that many OCaml domains
      ({!Impact_support.Pool}); results keep input order, so the profile
      is identical for any job count (default 1)
    @param clamp forwarded to the pool: by default the domain count is
      clamped to the machine's recommended count; [~clamp:false] runs
      the literal [jobs] (diagnostics only)
    @param probe forwarded to the pool: observes one
      {!Impact_support.Pool.task_sample} per completed run — see
      {!Impact_obs.Flight}
    @param keep_outputs when false, each run's [output] text is dropped
      (the MD5 [output_digest] survives), so profiling over many inputs
      does not hold every output buffer live (default true)
    @param tolerant when true, a failing run is retried once
      (deterministically, on the same domain; [?on_retry] observes the
      first failure) and, if it fails again, dropped from the average
      and recorded in [failures] instead of raised — the profile is
      built from the surviving runs.  Default false: fail fast with the
      lowest failing input's exception, [failures] always empty.
    @raise Invalid_argument if [inputs] is empty.
    @raise Impact_interp.Machine.Trap if a run traps (non-tolerant), or
      if every run fails (tolerant: the first input's error). *)
val profile :
  ?budget:Impact_interp.Rt.budget ->
  ?fuel:int ->
  ?obs:Impact_obs.Obs.t ->
  ?engine:Impact_interp.Machine.engine ->
  ?jobs:int ->
  ?clamp:bool ->
  ?probe:Impact_support.Pool.probe ->
  ?keep_outputs:bool ->
  ?tolerant:bool ->
  ?on_retry:(int -> exn -> unit) ->
  Impact_il.Il.program ->
  inputs:string list ->
  result
