(** Running a program over its input set to collect a profile.

    This is the IMPACT-I "Profiler to C Compiler interface": the same
    interpreter that measures final results also produces the node/arc
    weights that drive inline expansion. *)

(** What the run's instrumentation actually covered.  Under [Min] the
    elided counts were reconstructed exactly ({!Inference}); under
    [Sampled] the site weights are approximate and [sample_coverage]
    reports how much of the dynamic call volume the scaled samples
    explain.  [effective] differs from [requested] only when a [Min]
    plan was poisoned by a fabricated indirect-call target and the
    sweep was transparently redone fully instrumented. *)
type coverage = {
  requested : Coverage.mode;
  effective : Coverage.mode;
  total_sites : int;  (** call sites in alive code *)
  counted_sites : int;  (** sites the engines actually counted *)
  sample_coverage : float option;  (** [Sampled] only, in [0, 1] *)
}

(** The outcome of profiling: the averaged profile plus each run's raw
    result, so callers can also check outputs or aggregate differently.
    [failures] is empty except in tolerant mode, where it records the
    input indices whose runs failed even after one retry.

    Under a non-[Full] mode the per-run [runs] counters are the raw
    (partially uncounted, or sampled) measurements; only the averaged
    [profile] has been through inference. *)
type result = {
  profile : Profile.t;
  runs : Impact_interp.Machine.outcome list;
  failures : (int * exn) list;
  coverage : coverage;
}

(** [profile ?budget ?fuel ?obs ?engine ?jobs ?keep_outputs ?tolerant
    ?mode prog ~inputs] runs [prog] once per input and averages.  [obs]
    is handed to every {!Impact_interp.Machine.run} so run-level
    counters flow through the (mutex-protected) sink.

    @param budget per-run wall-clock deadline / output watermark,
      forwarded to every run ({!Impact_interp.Rt.budget}); with fuel it
      makes every run finite, so a hung run cannot wedge a worker
    @param engine interpreter core, forwarded to every run
    @param jobs when > 1, runs execute on that many OCaml domains
      ({!Impact_support.Pool}); results keep input order, so the profile
      is identical for any job count (default 1)
    @param clamp forwarded to the pool: by default the domain count is
      clamped to the machine's recommended count; [~clamp:false] runs
      the literal [jobs] (diagnostics only)
    @param probe forwarded to the pool: observes one
      {!Impact_support.Pool.task_sample} per completed run — see
      {!Impact_obs.Flight}
    @param keep_outputs when false, each run's [output] text is dropped
      (the MD5 [output_digest] survives), so profiling over many inputs
      does not hold every output buffer live (default true)
    @param tolerant when true, a failing run is retried once
      (deterministically, on the same domain; [?on_retry] observes the
      first failure) and, if it fails again, dropped from the average
      and recorded in [failures] instead of raised — the profile is
      built from the surviving runs.  Default false: fail fast with the
      lowest failing input's exception, [failures] always empty.
    @param mode instrumentation mode (default {!Coverage.Full}).  [Min]
      builds one minimum-coverage plan per call — shared read-only
      across the pool domains — counts only the co-forest arcs, and
      reconstructs the rest exactly; the resulting profile is
      bit-identical to [Full].  [Sampled] gates site counting on a fuel
      phase and scales back up: approximate, with the coverage figure
      in [result.coverage].
    @raise Invalid_argument if [inputs] is empty.
    @raise Impact_interp.Machine.Trap if a run traps (non-tolerant), or
      if every run fails (tolerant: the first input's error). *)
val profile :
  ?budget:Impact_interp.Rt.budget ->
  ?fuel:int ->
  ?obs:Impact_obs.Obs.t ->
  ?engine:Impact_interp.Machine.engine ->
  ?jobs:int ->
  ?clamp:bool ->
  ?probe:Impact_support.Pool.probe ->
  ?keep_outputs:bool ->
  ?tolerant:bool ->
  ?on_retry:(int -> exn -> unit) ->
  ?mode:Coverage.mode ->
  Impact_il.Il.program ->
  inputs:string list ->
  result
