(** Running a program over its input set to collect a profile.

    This is the IMPACT-I "Profiler to C Compiler interface": the same
    interpreter that measures final results also produces the node/arc
    weights that drive inline expansion. *)

(** The outcome of profiling: the averaged profile plus each run's raw
    result, so callers can also check outputs or aggregate differently. *)
type result = {
  profile : Profile.t;
  runs : Impact_interp.Machine.outcome list;
}

(** [profile ?fuel ?obs prog ~inputs] runs [prog] once per input and
    averages.  [obs] is handed to every {!Impact_interp.Machine.run} so
    run-level counters flow through the sink.
    @raise Invalid_argument if [inputs] is empty.
    @raise Impact_interp.Machine.Trap if a run traps. *)
val profile :
  ?fuel:int ->
  ?obs:Impact_obs.Obs.t ->
  Impact_il.Il.program -> inputs:string list -> result
