(** Running a program over its input set to collect a profile.

    This is the IMPACT-I "Profiler to C Compiler interface": the same
    interpreter that measures final results also produces the node/arc
    weights that drive inline expansion. *)

(** The outcome of profiling: the averaged profile plus each run's raw
    result, so callers can also check outputs or aggregate differently. *)
type result = {
  profile : Profile.t;
  runs : Impact_interp.Machine.outcome list;
}

(** [profile ?fuel ?obs ?engine ?jobs ?keep_outputs prog ~inputs] runs
    [prog] once per input and averages.  [obs] is handed to every
    {!Impact_interp.Machine.run} so run-level counters flow through the
    (mutex-protected) sink.

    @param engine interpreter core, forwarded to every run
    @param jobs when > 1, runs execute on that many OCaml domains
      ({!Impact_support.Pool}); results keep input order, so the profile
      is identical for any job count (default 1)
    @param keep_outputs when false, each run's [output] text is dropped
      (the MD5 [output_digest] survives), so profiling over many inputs
      does not hold every output buffer live (default true)
    @raise Invalid_argument if [inputs] is empty.
    @raise Impact_interp.Machine.Trap if a run traps. *)
val profile :
  ?fuel:int ->
  ?obs:Impact_obs.Obs.t ->
  ?engine:Impact_interp.Machine.engine ->
  ?jobs:int ->
  ?keep_outputs:bool ->
  Impact_il.Il.program -> inputs:string list -> result
