(** Fixed-bucket latency histograms with mergeable snapshots.

    Bucket boundaries are fixed at creation, so snapshots of histograms
    sharing the same bounds merge by element-wise addition — {!merge}
    is associative and commutative on the counts.  Recording is sharded
    per domain ({!observe} takes no lock on the hot path; see
    {!Metrics} for the concurrency argument) and {!disabled} makes
    every operation a no-op, preserving the repository's
    pay-only-when-observed discipline. *)

(** Upper bounds of the finite buckets, strictly increasing.  Bucket
    [i] covers [(bounds.(i-1), bounds.(i)]] (upper-inclusive; the first
    bucket reaches down to 0) and one extra overflow bucket catches
    everything above the last bound. *)
type bounds = float array

type t

(** [default_bounds ~lo ~hi ~per_decade] is log-spaced bounds from [lo]
    to [hi] with [per_decade] buckets per factor of 10.
    @raise Invalid_argument unless [0 < lo < hi] and [per_decade > 0]. *)
val default_bounds : lo:float -> hi:float -> per_decade:int -> bounds

(** 1µs to 10s expressed in milliseconds, 5 buckets per decade — the
    default scale for stage and task latencies. *)
val latency_ms_bounds : bounds

(** [create ?bounds ()] is an empty histogram (default
    {!latency_ms_bounds}).  The bounds array is copied.
    @raise Invalid_argument if [bounds] is empty or not strictly
    increasing. *)
val create : ?bounds:bounds -> unit -> t

(** Every operation on [disabled] is a no-op; {!observe} costs one
    pattern match. *)
val disabled : t

val enabled : t -> bool

(** [observe t v] records one value.  Callable from any domain. *)
val observe : t -> float -> unit

(** A merged, immutable frame of a histogram. *)
type snapshot = {
  s_bounds : bounds;
  s_counts : int array;  (** length [Array.length s_bounds + 1] *)
  s_count : int;
  s_sum : float;
  s_min : float;  (** [infinity] when empty *)
  s_max : float;  (** [neg_infinity] when empty *)
}

(** [snapshot t] merges every domain's shard.  Counts are exact once
    the observing domains have joined. *)
val snapshot : t -> snapshot

(** [merge a b] adds two snapshots.
    @raise Invalid_argument when the bounds differ. *)
val merge : snapshot -> snapshot -> snapshot

(** [bucket_index bounds v] is the bucket [v] lands in: the first bucket
    whose upper bound is [>= v] (boundaries are upper-inclusive), or the
    overflow bucket. *)
val bucket_index : bounds -> float -> int

(** [percentile snap q] estimates the [q]-quantile ([0. <= q <= 1.]) by
    linear interpolation inside the winning bucket, clamped to the
    observed min/max.  [nan] when empty.
    @raise Invalid_argument when [q] is outside [0, 1]. *)
val percentile : snapshot -> float -> float

(** [mean snap] is [s_sum / s_count]; [nan] when empty. *)
val mean : snapshot -> float

(** [snapshot_to_json snap] is
    [{"count":…,"sum":…,"mean":…,"min":…,"max":…,"p50":…,"p90":…,"p99":…}]
    (zeros when empty, so the JSON never carries NaN). *)
val snapshot_to_json : snapshot -> Sink.json
