(* Chrome/Perfetto trace-event export.

   Converts a list of {!Sink.event}s (the JSONL trace vocabulary) into
   one JSON document in the Chrome trace-event format, loadable directly
   in ui.perfetto.dev or chrome://tracing:

   - a span (matched "span_begin"/"span_end" pair, matched by span id)
     becomes one complete event (ph "X") with microsecond [ts]/[dur];
     a begin whose end never arrived (the trace stopped mid-span)
     becomes a zero-duration "X" so the document stays schema-valid;
   - a "metric" event with a numeric value becomes a counter sample
     (ph "C"), which Perfetto plots as a track;
   - every other kind becomes a thread-scoped instant (ph "i");
   - each OCaml domain is one thread ([tid] = domain id) under a single
     process ([pid] = 1), with "M"-phase metadata naming the tracks —
     that is what makes pool workers appear as per-domain lanes.

   The exporter is a pure function of the event list: drivers that want
   a Chrome trace collect events in a memory sink and convert at the
   end (see impactc's [--trace-format chrome]). *)

let pid = 1

let us ts = ts *. 1e6

type phase = X of float (* dur_us *) | I | C

let phase_string = function X _ -> "X" | I -> "i" | C -> "C"

let entry ~ph ~name ~ts ~tid ~args =
  Sink.Obj
    ([
       ("name", Sink.String name);
       ("ph", Sink.String (phase_string ph));
       ("ts", Sink.Float (us ts));
     ]
    @ (match ph with X dur -> [ ("dur", Sink.Float dur) ] | I | C -> [])
    @ [ ("pid", Sink.Int pid); ("tid", Sink.Int tid) ]
    @ (match ph with
      | I -> [ ("s", Sink.String "t") ]  (* thread-scoped instant *)
      | X _ | C -> [])
    @ match args with [] -> [] | _ -> [ ("args", Sink.Obj args) ])

let numeric = function
  | Sink.Int _ | Sink.Float _ -> true
  | Sink.Null | Sink.Bool _ | Sink.String _ | Sink.List _ | Sink.Obj _ -> false

(* Span ends are matched to begins by span id ([ev_span] carries the
   span's own id on both edges).  The complete event takes the begin's
   timestamp, domain and attributes; the duration comes from the end's
   timestamp (not its dur_ms attribute, so synthetic traces without it
   still export). *)
let chrome_of_events (events : Sink.event list) =
  let begins : (int, Sink.event) Hashtbl.t = Hashtbl.create 64 in
  let out = ref [] in
  let domains = Hashtbl.create 8 in
  let note_domain d = Hashtbl.replace domains d () in
  List.iter
    (fun (ev : Sink.event) ->
      note_domain ev.Sink.ev_dom;
      match ev.Sink.ev_kind with
      | "span_begin" -> Hashtbl.replace begins ev.Sink.ev_span ev
      | "span_end" -> (
        match Hashtbl.find_opt begins ev.Sink.ev_span with
        | Some b ->
          Hashtbl.remove begins ev.Sink.ev_span;
          out :=
            entry
              ~ph:(X (us ev.Sink.ev_ts -. us b.Sink.ev_ts))
              ~name:b.Sink.ev_name ~ts:b.Sink.ev_ts ~tid:b.Sink.ev_dom
              ~args:b.Sink.ev_attrs
            :: !out
        | None ->
          (* An end without a begin (trace truncated at the front):
             keep it visible as an instant. *)
          out :=
            entry ~ph:I ~name:ev.Sink.ev_name ~ts:ev.Sink.ev_ts
              ~tid:ev.Sink.ev_dom ~args:ev.Sink.ev_attrs
            :: !out)
      | "metric" -> (
        match List.assoc_opt "value" ev.Sink.ev_attrs with
        | Some v when numeric v ->
          out :=
            entry ~ph:C ~name:ev.Sink.ev_name ~ts:ev.Sink.ev_ts
              ~tid:ev.Sink.ev_dom
              ~args:[ ("value", v) ]
            :: !out
        | Some _ | None ->
          out :=
            entry ~ph:I ~name:ev.Sink.ev_name ~ts:ev.Sink.ev_ts
              ~tid:ev.Sink.ev_dom ~args:ev.Sink.ev_attrs
            :: !out)
      | _ ->
        out :=
          entry ~ph:I ~name:ev.Sink.ev_name ~ts:ev.Sink.ev_ts
            ~tid:ev.Sink.ev_dom ~args:ev.Sink.ev_attrs
          :: !out)
    events;
  (* Spans still open when the trace ended: zero-duration completes. *)
  Hashtbl.iter
    (fun _ (b : Sink.event) ->
      out :=
        entry ~ph:(X 0.) ~name:b.Sink.ev_name ~ts:b.Sink.ev_ts
          ~tid:b.Sink.ev_dom ~args:b.Sink.ev_attrs
        :: !out)
    begins;
  let metadata =
    Sink.Obj
      [
        ("name", Sink.String "process_name");
        ("ph", Sink.String "M");
        ("pid", Sink.Int pid);
        ("args", Sink.Obj [ ("name", Sink.String "impactc") ]);
      ]
    :: (Hashtbl.fold (fun d () acc -> d :: acc) domains []
       |> List.sort compare
       |> List.map (fun d ->
              Sink.Obj
                [
                  ("name", Sink.String "thread_name");
                  ("ph", Sink.String "M");
                  ("pid", Sink.Int pid);
                  ("tid", Sink.Int d);
                  ( "args",
                    Sink.Obj
                      [ ("name", Sink.String (Printf.sprintf "domain %d" d)) ]
                  );
                ]))
  in
  let ts_of e =
    match Sink.mem "ts" e with
    | Sink.Float x -> x
    | Sink.Int n -> float_of_int n
    | _ -> 0.
  in
  let sorted = List.stable_sort (fun a b -> compare (ts_of a) (ts_of b)) !out in
  Sink.Obj
    [
      ("traceEvents", Sink.List (metadata @ sorted));
      ("displayTimeUnit", Sink.String "ms");
    ]

let chrome_string_of_events events =
  Sink.json_to_string (chrome_of_events events)

let write_chrome path events =
  Impact_support.Atomic_io.write_string path (chrome_string_of_events events ^ "\n")
