type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to_string x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.1f" x
  else Printf.sprintf "%.17g" x

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float x -> Buffer.add_string buf (float_to_string x)
  | String s -> escape_string buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        write buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_string buf k;
        Buffer.add_char buf ':';
        write buf v)
      fields;
    Buffer.add_char buf '}'

let json_to_string j =
  let buf = Buffer.create 256 in
  write buf j;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun msg -> raise (Parse_error msg)) fmt

type parser_state = { src : string; mutable pos : int }

let peek p = if p.pos < String.length p.src then Some p.src.[p.pos] else None

let advance p = p.pos <- p.pos + 1

let rec skip_ws p =
  match peek p with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance p;
    skip_ws p
  | _ -> ()

let expect p c =
  match peek p with
  | Some c' when c' = c -> advance p
  | Some c' -> fail "expected '%c' at %d, found '%c'" c p.pos c'
  | None -> fail "expected '%c' at %d, found end of input" c p.pos

let parse_literal p word value =
  let n = String.length word in
  if p.pos + n <= String.length p.src && String.sub p.src p.pos n = word then begin
    p.pos <- p.pos + n;
    value
  end
  else fail "invalid literal at %d" p.pos

let parse_string p =
  expect p '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek p with
    | None -> fail "unterminated string at %d" p.pos
    | Some '"' -> advance p
    | Some '\\' ->
      advance p;
      (match peek p with
      | Some '"' -> Buffer.add_char buf '"'; advance p
      | Some '\\' -> Buffer.add_char buf '\\'; advance p
      | Some '/' -> Buffer.add_char buf '/'; advance p
      | Some 'n' -> Buffer.add_char buf '\n'; advance p
      | Some 'r' -> Buffer.add_char buf '\r'; advance p
      | Some 't' -> Buffer.add_char buf '\t'; advance p
      | Some 'b' -> Buffer.add_char buf '\b'; advance p
      | Some 'f' -> Buffer.add_char buf '\012'; advance p
      | Some 'u' ->
        advance p;
        if p.pos + 4 > String.length p.src then fail "bad \\u escape at %d" p.pos;
        let hex = String.sub p.src p.pos 4 in
        let code =
          try int_of_string ("0x" ^ hex)
          with _ -> fail "bad \\u escape at %d" p.pos
        in
        p.pos <- p.pos + 4;
        (* The emitter only escapes control characters this way; decode
           the basic plane as UTF-8 so foreign traces still load. *)
        if code < 0x80 then Buffer.add_char buf (Char.chr code)
        else if code < 0x800 then begin
          Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
        end
        else begin
          Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
          Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
        end
      | _ -> fail "bad escape at %d" p.pos);
      loop ()
    | Some c ->
      Buffer.add_char buf c;
      advance p;
      loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number p =
  let start = p.pos in
  let is_float = ref false in
  let rec loop () =
    match peek p with
    | Some ('0' .. '9' | '-' | '+') ->
      advance p;
      loop ()
    | Some ('.' | 'e' | 'E') ->
      is_float := true;
      advance p;
      loop ()
    | _ -> ()
  in
  loop ();
  let s = String.sub p.src start (p.pos - start) in
  if !is_float then
    match float_of_string_opt s with
    | Some x -> Float x
    | None -> fail "bad number '%s' at %d" s start
  else
    match int_of_string_opt s with
    | Some n -> Int n
    | None -> (
      match float_of_string_opt s with
      | Some x -> Float x
      | None -> fail "bad number '%s' at %d" s start)

let rec parse_value p =
  skip_ws p;
  match peek p with
  | None -> fail "unexpected end of input"
  | Some '{' ->
    advance p;
    skip_ws p;
    if peek p = Some '}' then begin
      advance p;
      Obj []
    end
    else begin
      let fields = ref [] in
      let rec fields_loop () =
        skip_ws p;
        let key = parse_string p in
        skip_ws p;
        expect p ':';
        let v = parse_value p in
        fields := (key, v) :: !fields;
        skip_ws p;
        match peek p with
        | Some ',' ->
          advance p;
          fields_loop ()
        | Some '}' -> advance p
        | _ -> fail "expected ',' or '}' at %d" p.pos
      in
      fields_loop ();
      Obj (List.rev !fields)
    end
  | Some '[' ->
    advance p;
    skip_ws p;
    if peek p = Some ']' then begin
      advance p;
      List []
    end
    else begin
      let items = ref [] in
      let rec items_loop () =
        let v = parse_value p in
        items := v :: !items;
        skip_ws p;
        match peek p with
        | Some ',' ->
          advance p;
          items_loop ()
        | Some ']' -> advance p
        | _ -> fail "expected ',' or ']' at %d" p.pos
      in
      items_loop ();
      List (List.rev !items)
    end
  | Some '"' -> String (parse_string p)
  | Some 't' -> parse_literal p "true" (Bool true)
  | Some 'f' -> parse_literal p "false" (Bool false)
  | Some 'n' -> parse_literal p "null" Null
  | Some ('-' | '0' .. '9') -> parse_number p
  | Some c -> fail "unexpected character '%c' at %d" c p.pos

let json_of_string s =
  let p = { src = s; pos = 0 } in
  let v = parse_value p in
  skip_ws p;
  if p.pos <> String.length s then fail "trailing garbage at %d" p.pos;
  v

let mem key = function
  | Obj fields -> ( match List.assoc_opt key fields with Some v -> v | None -> Null)
  | _ -> Null

(* ------------------------------------------------------------------ *)
(* Events                                                              *)
(* ------------------------------------------------------------------ *)

type event = {
  ev_ts : float;
  ev_kind : string;
  ev_name : string;
  ev_span : int;
  ev_dom : int;
  ev_attrs : (string * json) list;
}

let event_to_json ev =
  Obj
    [
      ("ts", Float ev.ev_ts);
      ("kind", String ev.ev_kind);
      ("name", String ev.ev_name);
      ("span", Int ev.ev_span);
      ("dom", Int ev.ev_dom);
      ("attrs", Obj ev.ev_attrs);
    ]

let event_of_json j =
  let str key = match mem key j with String s -> s | _ -> fail "event lacks %s" key in
  let ts = match mem "ts" j with Float x -> x | Int n -> float_of_int n | _ -> fail "event lacks ts" in
  let span = match mem "span" j with Int n -> n | _ -> fail "event lacks span" in
  (* [dom] arrived with PR 6; traces written before then simply lack it,
     and re-parse with every event on domain 0. *)
  let dom = match mem "dom" j with Int n -> n | _ -> 0 in
  let attrs = match mem "attrs" j with Obj fields -> fields | Null -> [] | _ -> fail "bad attrs" in
  {
    ev_ts = ts;
    ev_kind = str "kind";
    ev_name = str "name";
    ev_span = span;
    ev_dom = dom;
    ev_attrs = attrs;
  }

let event_of_line s = event_of_json (json_of_string s)

(* ------------------------------------------------------------------ *)
(* Sinks                                                               *)
(* ------------------------------------------------------------------ *)

(* Every non-null sink carries a mutex: parallel profiling (see
   {!Impact_support.Pool}) funnels events from several domains into one
   sink, and interleaved JSONL lines or a torn event list must not be
   possible.  The null sink stays lock-free — the [enabled] check keeps
   the disabled path at zero cost. *)
(* Sinks fail open: a write that raises (disk full, closed channel, an
   injected {!Impact_support.Fault.Sink_write} fault) records the first
   error and stops emitting instead of unwinding whatever pipeline stage
   happened to emit the event — observability must never take the
   computation down.  Drivers decide severity afterwards via {!broken}:
   a strict run turns a broken sink into a typed artifact error, a
   degraded run reports it and keeps the result. *)
type t =
  | S_null
  | S_memory of { mu : Mutex.t; mutable events : event list; mutable err : exn option }
  | S_jsonl of { mu : Mutex.t; oc : out_channel; mutable err : exn option }
  | S_custom of { mu : Mutex.t; f : event -> unit; mutable err : exn option }

let null = S_null

let memory () = S_memory { mu = Mutex.create (); events = []; err = None }

let jsonl oc = S_jsonl { mu = Mutex.create (); oc; err = None }

let custom f = S_custom { mu = Mutex.create (); f; err = None }

let enabled = function S_null -> false | _ -> true

let emit t ev =
  match t with
  | S_null -> ()
  | S_memory m -> (
    try
      Impact_support.Fault.hit Impact_support.Fault.Sink_write;
      Mutex.protect m.mu (fun () -> m.events <- ev :: m.events)
    with e -> Mutex.protect m.mu (fun () -> if m.err = None then m.err <- Some e))
  | S_jsonl j -> (
    try
      Impact_support.Fault.hit Impact_support.Fault.Sink_write;
      let line = json_to_string (event_to_json ev) in
      Mutex.protect j.mu (fun () ->
          output_string j.oc line;
          output_char j.oc '\n')
    with e -> Mutex.protect j.mu (fun () -> if j.err = None then j.err <- Some e))
  | S_custom c -> (
    try
      Impact_support.Fault.hit Impact_support.Fault.Sink_write;
      Mutex.protect c.mu (fun () -> c.f ev)
    with e -> Mutex.protect c.mu (fun () -> if c.err = None then c.err <- Some e))

let events = function
  | S_memory m -> Mutex.protect m.mu (fun () -> List.rev m.events)
  | S_null | S_jsonl _ | S_custom _ -> []

let broken = function
  | S_null -> None
  | S_memory m -> Mutex.protect m.mu (fun () -> m.err)
  | S_jsonl j -> Mutex.protect j.mu (fun () -> j.err)
  | S_custom c -> Mutex.protect c.mu (fun () -> c.err)

let close = function
  | S_jsonl j -> (
    try Mutex.protect j.mu (fun () -> flush j.oc)
    with e -> Mutex.protect j.mu (fun () -> if j.err = None then j.err <- Some e))
  | S_null | S_memory _ | S_custom _ -> ()
