(** The observability context threaded through the pipeline.

    Bundles a {!Trace} tracer and a {!Metrics} registry over one shared
    {!Sink}.  Every instrumented function takes [?obs:Obs.t] defaulting
    to {!null}, which makes the whole layer disappear: no events, no
    allocation, no clock reads — behaviour and output stay byte-identical
    to an uninstrumented build. *)

type t = {
  trace : Trace.t;
  metrics : Metrics.t;
}

(** [null] observes nothing. *)
val null : t

(** [create ?clock sink] builds a context over [sink]. *)
val create : ?clock:(unit -> float) -> Sink.t -> t

val enabled : t -> bool

val sink : t -> Sink.t

(** Shorthands delegating to the bundled tracer/registry. *)

val span : t -> ?attrs:(string * Sink.json) list -> string -> (unit -> 'a) -> 'a

val instant : t -> kind:string -> ?attrs:(string * Sink.json) list -> string -> unit

val incr : t -> ?by:int -> string -> unit

val gauge_int : t -> string -> int -> unit

val gauge_float : t -> string -> float -> unit

(** [finish ?metrics_out t] flushes metrics as ["metric"] events, writes
    the JSON snapshot to [metrics_out] when given, and flushes the
    sink. *)
val finish : ?metrics_out:string -> t -> unit
