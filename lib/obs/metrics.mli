(** Counters and gauges.

    A registry accumulates named monotonic counters and last-value
    gauges in memory; {!flush} reports every metric as one ["metric"]
    event through the registry's sink, and {!to_json} renders the same
    snapshot for a [--metrics-out] file.  On the {!Sink.null} sink every
    operation is a no-op, so default (unobserved) runs accumulate
    nothing.

    Counters are sharded per domain and merged at read time: {!incr}
    from a pool worker bumps a domain-private table with no lock on the
    hot path, and {!snapshot}/{!counter_value} sum every shard.  Totals
    read after the workers have joined (which every
    {!Impact_support.Pool} map guarantees) are exact. *)

type t

val create : Sink.t -> t

(** [null] is a registry over {!Sink.null}; all operations no-ops. *)
val null : t

val enabled : t -> bool

(** [incr t ?by name] bumps counter [name] (default [by = 1]). *)
val incr : t -> ?by:int -> string -> unit

(** [gauge t name v] sets gauge [name] to [v] (last write wins). *)
val gauge : t -> string -> Sink.json -> unit

val gauge_int : t -> string -> int -> unit

val gauge_float : t -> string -> float -> unit

(** [counter_value t name] is the current count (0 when absent). *)
val counter_value : t -> string -> int

(** [snapshot t] is every metric, sorted by name: counters as
    [Sink.Int], gauges as recorded. *)
val snapshot : t -> (string * Sink.json) list

(** [to_json t] is [{"counters":{…},"gauges":{…}}], keys sorted. *)
val to_json : t -> Sink.json

(** [flush ?trace t] emits one ["metric"] event per entry through the
    sink, tagged with the current span of [trace] when given. *)
val flush : ?trace:Trace.t -> t -> unit

(** [write_json t path] writes {!to_json} to [path] (pretty: one line). *)
val write_json : t -> string -> unit
