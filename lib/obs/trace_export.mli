(** Chrome/Perfetto trace-event export.

    [chrome_of_events evs] converts a trace (the event list a
    {!Sink.memory} sink collected, or re-parsed JSONL lines) into one
    Chrome trace-event JSON document that loads directly in
    ui.perfetto.dev or chrome://tracing:

    - matched span pairs become complete events (ph ["X"]) with
      microsecond [ts]/[dur]; spans left open become zero-duration
      completes;
    - numeric ["metric"] events become counter tracks (ph ["C"]);
    - everything else becomes thread-scoped instants (ph ["i"]);
    - each OCaml domain is one named thread track ([tid] = domain id,
      ph ["M"] metadata) under a single process — pool workers appear
      as per-domain lanes. *)

val chrome_of_events : Sink.event list -> Sink.json

val chrome_string_of_events : Sink.event list -> string

(** [write_chrome path evs] writes the document atomically
    (temp + rename). *)
val write_chrome : string -> Sink.event list -> unit
