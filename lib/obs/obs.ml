type t = {
  trace : Trace.t;
  metrics : Metrics.t;
}

let null = { trace = Trace.null; metrics = Metrics.null }

let create ?clock sink = { trace = Trace.create ?clock sink; metrics = Metrics.create sink }

let enabled t = Trace.enabled t.trace

let sink t = Trace.sink t.trace

let span t ?attrs name f = Trace.with_span t.trace ?attrs name f

let instant t ~kind ?attrs name = Trace.instant t.trace ~kind ?attrs name

let incr t ?by name = Metrics.incr t.metrics ?by name

let gauge_int t name n = Metrics.gauge_int t.metrics name n

let gauge_float t name x = Metrics.gauge_float t.metrics name x

let finish ?metrics_out t =
  Metrics.flush ~trace:t.trace t.metrics;
  (match metrics_out with
  | Some path when enabled t -> Metrics.write_json t.metrics path
  | _ -> ());
  Sink.close (sink t)
