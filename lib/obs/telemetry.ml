(* Telemetry bundle: a registry of named latency histograms plus an
   optional flight recorder, the quantitative counterpart to the
   event-stream {!Obs} bundle.  Histograms are created on first
   observation (all sharing the registry's bounds, so any two are
   mergeable); the disabled value follows the repository's
   pay-only-when-observed rule — every operation is a no-op. *)

type live = {
  mu : Mutex.t;  (* guards the name -> histogram table *)
  bounds : Histogram.bounds;
  hists : (string, Histogram.t) Hashtbl.t;
  flight : Flight.t option;
}

type t = Disabled | T of live

let null = Disabled

let create ?(bounds = Histogram.latency_ms_bounds) ?flight_capacity () =
  T
    {
      mu = Mutex.create ();
      bounds;
      hists = Hashtbl.create 16;
      flight =
        (match flight_capacity with
        | None -> None
        | Some capacity -> Some (Flight.create ~capacity ()));
    }

let enabled = function Disabled -> false | T _ -> true

let histogram t name =
  match t with
  | Disabled -> Histogram.disabled
  | T l ->
    Mutex.protect l.mu (fun () ->
        match Hashtbl.find_opt l.hists name with
        | Some h -> h
        | None ->
          let h = Histogram.create ~bounds:l.bounds () in
          Hashtbl.replace l.hists name h;
          h)

let observe t name v =
  match t with Disabled -> () | T _ -> Histogram.observe (histogram t name) v

let flight = function Disabled -> None | T l -> l.flight

(* A pool probe that records the sample in the flight recorder (when
   present) and feeds run time into the "pool.task_ms" histogram and
   queue wait into "pool.queue_ms". *)
let probe t : Impact_support.Pool.probe option =
  match t with
  | Disabled -> None
  | T l ->
    Some
      (fun (s : Impact_support.Pool.task_sample) ->
        (match l.flight with Some f -> Flight.record f s | None -> ());
        observe t "pool.task_ms" s.Impact_support.Pool.ts_run_ms;
        observe t "pool.queue_ms" s.Impact_support.Pool.ts_queue_ms)

let to_json t =
  match t with
  | Disabled -> Sink.Obj []
  | T l ->
    let hists =
      Mutex.protect l.mu (fun () ->
          Hashtbl.fold (fun name h acc -> (name, h) :: acc) l.hists [])
      |> List.sort (fun (a, _) (b, _) -> compare a b)
      |> List.map (fun (name, h) ->
             (name, Histogram.snapshot_to_json (Histogram.snapshot h)))
    in
    Sink.Obj
      (("histograms", Sink.Obj hists)
      ::
      (match l.flight with
      | None -> []
      | Some f -> [ ("flight", Flight.summary_to_json (Flight.summarize f)) ]))
