(** Telemetry bundle: named latency {!Histogram}s plus an optional
    {!Flight} recorder.

    The quantitative counterpart to the event-stream {!Obs} bundle:
    where [Obs] answers "what happened, in what order", a [Telemetry]
    value answers "how long, how often, at which percentile".  On
    {!null} every operation is a no-op. *)

type t

val null : t

(** [create ?bounds ?flight_capacity ()] is an empty registry.  All its
    histograms share [bounds] (default {!Histogram.latency_ms_bounds}),
    so any two snapshots merge.  [flight_capacity], when given, attaches
    a flight recorder retaining that many pool task samples. *)
val create : ?bounds:Histogram.bounds -> ?flight_capacity:int -> unit -> t

val enabled : t -> bool

(** [histogram t name] is the named histogram, created empty on first
    use; {!Histogram.disabled} on the null registry. *)
val histogram : t -> string -> Histogram.t

(** [observe t name v] records [v] into the named histogram. *)
val observe : t -> string -> float -> unit

val flight : t -> Flight.t option

(** [probe t] is a pool probe feeding the flight recorder (when
    attached) plus the ["pool.task_ms"]/["pool.queue_ms"] histograms;
    [None] on the null registry, so an unobserved pool map pays
    nothing. *)
val probe : t -> Impact_support.Pool.probe option

(** [to_json t] is [{"histograms":{name: {count,…,p50,p90,p99}},
    "flight": {…}}] (flight only when attached; [{}] when null). *)
val to_json : t -> Sink.json
