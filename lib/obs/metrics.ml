(* Counters are sharded per domain: each domain owns a private counter
   table (found through a domain-local-storage slot, registered with the
   registry on first use) and bumps its own [int ref]s without taking
   any lock on the hot path.  Readers — [snapshot], [counter_value],
   [to_json] — merge every shard at query time.

   Soundness: a shard has exactly one writer, the domain it belongs to.
   Structural changes (inserting a new counter name, which may resize
   the [Hashtbl]) and reader folds both take the shard's mutex, so a
   reader never iterates a table mid-resize.  Bumping an {e existing}
   ref is a plain word-sized write racing only plain reads — no tearing
   under the OCaml memory model — and a [Domain.join] before reading
   (every {!Impact_support.Pool} map joins its workers) makes merged
   totals exact.  Mid-run reads may observe a slightly stale count,
   which is fine for monitoring.

   Gauges are last-write-wins across domains, so they keep the single
   mutex-protected table.  The disabled path stays lock-free. *)

type shard = {
  smu : Mutex.t;
  tbl : (string, int ref) Hashtbl.t;
}

type t = {
  sink : Sink.t;
  mu : Mutex.t;  (* guards [shards] and [gauges] *)
  mutable shards : shard list;
  slot : shard option ref Domain.DLS.key;
  gauges : (string, Sink.json) Hashtbl.t;
}

let create sink =
  {
    sink;
    mu = Mutex.create ();
    shards = [];
    slot = Domain.DLS.new_key (fun () -> ref None);
    gauges = Hashtbl.create 32;
  }

let null = create Sink.null

let enabled t = Sink.enabled t.sink

(* This domain's shard, created and registered on first use.  The DLS
   slot is keyed per registry, so two registries on one domain keep
   separate shards. *)
let my_shard t =
  let cell = Domain.DLS.get t.slot in
  match !cell with
  | Some s -> s
  | None ->
    let s = { smu = Mutex.create (); tbl = Hashtbl.create 16 } in
    Mutex.protect t.mu (fun () -> t.shards <- s :: t.shards);
    cell := Some s;
    s

let incr t ?(by = 1) name =
  if enabled t then begin
    let s = my_shard t in
    match Hashtbl.find_opt s.tbl name with
    | Some r -> r := !r + by
    | None -> Mutex.protect s.smu (fun () -> Hashtbl.replace s.tbl name (ref by))
  end

let gauge t name v =
  if enabled t then
    Mutex.protect t.mu (fun () -> Hashtbl.replace t.gauges name v)

let gauge_int t name n = gauge t name (Sink.Int n)

let gauge_float t name x = gauge t name (Sink.Float x)

(* Merge every shard's counters into one name -> total table. *)
let merged_counters t =
  let shards = Mutex.protect t.mu (fun () -> t.shards) in
  let acc = Hashtbl.create 32 in
  List.iter
    (fun s ->
      Mutex.protect s.smu (fun () ->
          Hashtbl.iter
            (fun name r ->
              match Hashtbl.find_opt acc name with
              | Some total -> total := !total + !r
              | None -> Hashtbl.replace acc name (ref !r))
            s.tbl))
    shards;
  acc

let counter_value t name =
  let shards = Mutex.protect t.mu (fun () -> t.shards) in
  List.fold_left
    (fun total s ->
      Mutex.protect s.smu (fun () ->
          match Hashtbl.find_opt s.tbl name with
          | Some r -> total + !r
          | None -> total))
    0 shards

let sorted_bindings tbl value =
  Hashtbl.fold (fun k v acc -> (k, value v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let snapshot t =
  let counters = merged_counters t in
  sorted_bindings counters (fun r -> Sink.Int !r)
  @ Mutex.protect t.mu (fun () -> sorted_bindings t.gauges Fun.id)

let to_json t =
  let counters = merged_counters t in
  Sink.Obj
    [
      ("counters", Sink.Obj (sorted_bindings counters (fun r -> Sink.Int !r)));
      ( "gauges",
        Sink.Obj (Mutex.protect t.mu (fun () -> sorted_bindings t.gauges Fun.id))
      );
    ]

let flush ?trace t =
  if enabled t then begin
    let span = match trace with Some tr -> Trace.current_span tr | None -> 0 in
    List.iter
      (fun (name, v) ->
        Sink.emit t.sink
          {
            Sink.ev_ts = 0.;
            ev_kind = "metric";
            ev_name = name;
            ev_span = span;
            ev_dom = (Domain.self () :> int);
            ev_attrs = [ ("value", v) ];
          })
      (snapshot t)
  end

(* Atomic (temp + rename): an interrupted run never leaves a truncated
   metrics snapshot at [path]. *)
let write_json t path =
  Impact_support.Atomic_io.with_file path (fun oc ->
      output_string oc (Sink.json_to_string (to_json t));
      output_char oc '\n')
