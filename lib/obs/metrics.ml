(* The tables are mutex-protected: parallel runs (see
   {!Impact_support.Pool}) accumulate machine.* counters from several
   domains at once.  The disabled path stays lock-free. *)
type t = {
  sink : Sink.t;
  mu : Mutex.t;
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, Sink.json) Hashtbl.t;
}

let create sink =
  {
    sink;
    mu = Mutex.create ();
    counters = Hashtbl.create 32;
    gauges = Hashtbl.create 32;
  }

let null = create Sink.null

let enabled t = Sink.enabled t.sink

let incr t ?(by = 1) name =
  if enabled t then
    Mutex.protect t.mu (fun () ->
        match Hashtbl.find_opt t.counters name with
        | Some r -> r := !r + by
        | None -> Hashtbl.replace t.counters name (ref by))

let gauge t name v =
  if enabled t then
    Mutex.protect t.mu (fun () -> Hashtbl.replace t.gauges name v)

let gauge_int t name n = gauge t name (Sink.Int n)

let gauge_float t name x = gauge t name (Sink.Float x)

let counter_value t name =
  Mutex.protect t.mu (fun () ->
      match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0)

let sorted_bindings tbl value =
  Hashtbl.fold (fun k v acc -> (k, value v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let snapshot t =
  Mutex.protect t.mu (fun () ->
      sorted_bindings t.counters (fun r -> Sink.Int !r)
      @ sorted_bindings t.gauges Fun.id)

let to_json t =
  Mutex.protect t.mu (fun () ->
      Sink.Obj
        [
          ("counters", Sink.Obj (sorted_bindings t.counters (fun r -> Sink.Int !r)));
          ("gauges", Sink.Obj (sorted_bindings t.gauges Fun.id));
        ])

let flush ?trace t =
  if enabled t then begin
    let span = match trace with Some tr -> Trace.current_span tr | None -> 0 in
    List.iter
      (fun (name, v) ->
        Sink.emit t.sink
          {
            Sink.ev_ts = 0.;
            ev_kind = "metric";
            ev_name = name;
            ev_span = span;
            ev_attrs = [ ("value", v) ];
          })
      (snapshot t)
  end

(* Atomic (temp + rename): an interrupted run never leaves a truncated
   metrics snapshot at [path]. *)
let write_json t path =
  Impact_support.Atomic_io.with_file path (fun oc ->
      output_string oc (Sink.json_to_string (to_json t));
      output_char oc '\n')
