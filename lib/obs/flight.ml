(* Flight recorder: a bounded ring of {!Impact_support.Pool.task_sample}
   records fed by a pool probe.  Memory is fixed at creation (the ring
   never grows); once full, new samples overwrite the oldest, so a long
   sweep keeps its most recent window — enough to reconstruct per-domain
   utilisation, queue wait and GC pressure after the fact without
   unbounded buffering.

   One mutex per recorder: samples arrive from worker domains mid-sweep,
   and a torn sample (index written, GC deltas not yet) must not be
   observable.  Recording is a few word writes under the lock — noise
   next to an interpreter run. *)

module Pool = Impact_support.Pool

type t = {
  mu : Mutex.t;
  ring : Pool.task_sample array;
  mutable seen : int;  (* total samples ever recorded *)
}

let dummy_sample =
  {
    Pool.ts_index = -1;
    ts_domain = -1;
    ts_queue_ms = 0.;
    ts_run_ms = 0.;
    ts_minor_collections = 0;
    ts_major_collections = 0;
    ts_promoted_words = 0.;
    ts_minor_words = 0.;
  }

let create ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Flight.create: capacity must be positive";
  { mu = Mutex.create (); ring = Array.make capacity dummy_sample; seen = 0 }

let capacity t = Array.length t.ring

let record t (s : Pool.task_sample) =
  Mutex.protect t.mu (fun () ->
      t.ring.(t.seen mod Array.length t.ring) <- s;
      t.seen <- t.seen + 1)

let probe t : Pool.probe = record t

let recorded t = Mutex.protect t.mu (fun () -> t.seen)

(* Retained samples, oldest first. *)
let samples t =
  Mutex.protect t.mu (fun () ->
      let cap = Array.length t.ring in
      let n = min t.seen cap in
      let first = if t.seen <= cap then 0 else t.seen mod cap in
      List.init n (fun i -> t.ring.((first + i) mod cap)))

type summary = {
  f_tasks : int;
  f_recorded : int;
  f_domains : int;
  f_queue_ms : float;
  f_run_ms : float;
  f_minor_collections : int;
  f_major_collections : int;
  f_promoted_words : float;
  f_minor_words : float;
}

let summarize t =
  let ss = samples t in
  let domains = Hashtbl.create 8 in
  let queue = ref 0. and run = ref 0. in
  let minc = ref 0 and majc = ref 0 in
  let promoted = ref 0. and minor = ref 0. in
  List.iter
    (fun (s : Pool.task_sample) ->
      Hashtbl.replace domains s.Pool.ts_domain ();
      queue := !queue +. s.Pool.ts_queue_ms;
      run := !run +. s.Pool.ts_run_ms;
      minc := !minc + s.Pool.ts_minor_collections;
      majc := !majc + s.Pool.ts_major_collections;
      promoted := !promoted +. s.Pool.ts_promoted_words;
      minor := !minor +. s.Pool.ts_minor_words)
    ss;
  {
    f_tasks = List.length ss;
    f_recorded = recorded t;
    f_domains = Hashtbl.length domains;
    f_queue_ms = !queue;
    f_run_ms = !run;
    f_minor_collections = !minc;
    f_major_collections = !majc;
    f_promoted_words = !promoted;
    f_minor_words = !minor;
  }

(* Compare a multi-domain sweep against its single-domain baseline over
   the same tasks and name the dominant pathology.  The diagnosis keys
   on what actually grows: the same work triggering more minor
   collections and a longer aggregate run time under more domains is
   the cross-domain minor-GC barrier signature (every collection stops
   every domain); aggregate run time growing without GC growth points
   at plain time-slicing; queue wait dominating points at submission or
   sharding imbalance. *)
let diagnose ~(baseline : summary) (s : summary) =
  if s.f_tasks = 0 || baseline.f_tasks = 0 then
    "no samples recorded; nothing to diagnose"
  else begin
    let pct part whole = if whole > 0. then 100. *. part /. whole else 0. in
    let run_growth =
      if baseline.f_run_ms > 0. then s.f_run_ms /. baseline.f_run_ms else 1.
    in
    let gc_growth =
      if baseline.f_minor_collections > 0 then
        float_of_int s.f_minor_collections
        /. float_of_int baseline.f_minor_collections
      else if s.f_minor_collections > 0 then infinity
      else 1.
    in
    let queue_share = pct s.f_queue_ms (s.f_queue_ms +. s.f_run_ms) in
    if run_growth > 1.2 && gc_growth > 1.2 then
      Printf.sprintf
        "minor-GC contention: %d domains ran the same tasks %.1fx slower in \
         aggregate with %.1fx the minor collections (%d vs %d) — every minor \
         collection is a stop-the-world barrier across all domains"
        s.f_domains run_growth gc_growth s.f_minor_collections
        baseline.f_minor_collections
    else if run_growth > 1.2 then
      Printf.sprintf
        "core oversubscription: aggregate task run time grew %.1fx across %d \
         domains without matching GC growth — domains are time-slicing cores"
        run_growth s.f_domains
    else if queue_share > 50. then
      Printf.sprintf
        "queueing dominates: %.0f%% of task wall time is queue wait across %d \
         domains — sharding is too fine or submission too slow"
        queue_share s.f_domains
    else
      Printf.sprintf
        "scaling healthy: aggregate run time %.2fx baseline across %d \
         domains, queue wait %.0f%%, minor collections %d vs %d"
        run_growth s.f_domains queue_share s.f_minor_collections
        baseline.f_minor_collections
  end

let summary_to_json s =
  Sink.Obj
    [
      ("tasks", Sink.Int s.f_tasks);
      ("recorded", Sink.Int s.f_recorded);
      ("domains", Sink.Int s.f_domains);
      ("queue_ms", Sink.Float s.f_queue_ms);
      ("run_ms", Sink.Float s.f_run_ms);
      ("minor_collections", Sink.Int s.f_minor_collections);
      ("major_collections", Sink.Int s.f_major_collections);
      ("promoted_words", Sink.Float s.f_promoted_words);
      ("minor_words", Sink.Float s.f_minor_words);
    ]
