(** Telemetry events and the pluggable sinks they flow through.

    Every observation the pipeline makes — a span opening or closing, a
    metric being reported, an inline decision being taken — is one
    {!event}.  Producers never format events themselves; they hand them
    to a {!t} and the sink decides what happens: nothing (the default),
    buffering in memory (tests), or one JSON object per line on an
    output channel (the [--trace] file format).

    The module also carries the tiny JSON encoder/parser the rest of the
    repository uses for machine-readable output ({!Metrics.to_json},
    [Report.to_json], the bench smoke summary), so observability output
    round-trips without external dependencies. *)

(** A JSON value.  Integers and floats are kept distinct so counters
    survive a round-trip exactly. *)
type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

(** [json_to_string j] is the compact (single-line) rendering.  Floats
    are printed with enough digits to round-trip; a float that would
    print without ['.'], ['e'] or ['n'] gets a trailing [".0"] so it
    re-parses as a float. *)
val json_to_string : json -> string

exception Parse_error of string

(** [json_of_string s] parses one JSON value.
    @raise Parse_error on malformed input or trailing garbage. *)
val json_of_string : string -> json

(** [mem key obj] is the value bound to [key] in object [obj], or
    {!Null} when absent or when [obj] is not an object. *)
val mem : string -> json -> json

(** One telemetry event.  [ev_span] is the id of the innermost enclosing
    span (0 when emitted outside any span); [ev_ts] is seconds since the
    trace clock's origin; [ev_dom] is the id of the OCaml domain that
    emitted the event, which becomes the Perfetto track in the Chrome
    export ({!Trace_export}). *)
type event = {
  ev_ts : float;
  ev_kind : string;   (** ["span_begin"], ["span_end"], ["metric"], ["decision"], ["run"], ... *)
  ev_name : string;
  ev_span : int;
  ev_dom : int;
  ev_attrs : (string * json) list;
}

(** [event_to_json ev] / [event_of_json j] convert an event to/from the
    JSONL object shape
    [{"ts":…,"kind":…,"name":…,"span":…,"dom":…,"attrs":{…}}].  A
    parsed object without ["dom"] (a pre-PR 6 trace) yields domain 0.
    @raise Parse_error when [j] lacks a required field. *)
val event_to_json : event -> json

val event_of_json : json -> event

(** [event_of_line s] parses one JSONL line. @raise Parse_error *)
val event_of_line : string -> event

type t

(** [null] drops every event; {!enabled} is [false] only for it, so
    instrumentation can skip building events entirely. *)
val null : t

(** [memory ()] buffers events in order; read them back with {!events}. *)
val memory : unit -> t

(** [jsonl oc] writes each event as one JSON line on [oc].  The channel
    is flushed by {!close} but not owned: callers opened it, callers
    close it after {!close}. *)
val jsonl : out_channel -> t

(** [custom f] calls [f] on every event. *)
val custom : (event -> unit) -> t

val enabled : t -> bool

val emit : t -> event -> unit
(** Sinks fail open: a write that raises (disk full, closed channel, an
    injected fault) records the first error and silently stops emitting
    — observability never unwinds the pipeline.  Check {!broken} after
    the run to decide whether that matters. *)

(** [events t] is the buffered contents of a {!memory} sink, in emission
    order; [[]] for every other sink. *)
val events : t -> event list

(** [broken t] is the first write error this sink swallowed, if any.
    Strict drivers turn it into a typed artifact error; degraded
    drivers report it alongside the result. *)
val broken : t -> exn option

(** [close t] flushes buffered output (JSONL channel). *)
val close : t -> unit
