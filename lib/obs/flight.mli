(** Flight recorder: a bounded in-memory ring of per-task pool samples.

    Attach {!probe} to any {!Impact_support.Pool} map and the recorder
    keeps the most recent [capacity] {!Impact_support.Pool.task_sample}
    records — queue wait, run time, per-domain GC deltas — in fixed
    memory.  {!summarize} aggregates the retained window and
    {!diagnose} compares a sweep against its single-domain baseline to
    name the dominant scaling pathology (minor-GC barrier contention,
    core oversubscription, or queueing). *)

type t

(** [create ?capacity ()] is an empty recorder retaining the last
    [capacity] samples (default 4096).
    @raise Invalid_argument when [capacity <= 0]. *)
val create : ?capacity:int -> unit -> t

val capacity : t -> int

(** [record t s] stores one sample, overwriting the oldest when full.
    Thread-safe. *)
val record : t -> Impact_support.Pool.task_sample -> unit

(** [probe t] is [record t] as a pool probe. *)
val probe : t -> Impact_support.Pool.probe

(** [recorded t] is the total number of samples ever recorded (may
    exceed {!capacity}). *)
val recorded : t -> int

(** [samples t] is the retained window, oldest first. *)
val samples : t -> Impact_support.Pool.task_sample list

(** Aggregates over the retained window.  [f_tasks] is the window size,
    [f_recorded] the lifetime total, [f_domains] the number of distinct
    domains that ran tasks; times are summed milliseconds, GC fields
    summed [Gc.quick_stat] deltas. *)
type summary = {
  f_tasks : int;
  f_recorded : int;
  f_domains : int;
  f_queue_ms : float;
  f_run_ms : float;
  f_minor_collections : int;
  f_major_collections : int;
  f_promoted_words : float;
  f_minor_words : float;
}

val summarize : t -> summary

(** [diagnose ~baseline s] is a one-sentence verdict on sweep [s]
    relative to the single-domain [baseline] over the same tasks:
    minor-GC contention (aggregate run time and minor collections both
    grew), core oversubscription (run time grew without GC growth),
    queueing (queue wait dominates), or healthy. *)
val diagnose : baseline:summary -> summary -> string

val summary_to_json : summary -> Sink.json
