type t = {
  sink : Sink.t;
  clock : unit -> float;
  origin : float;
  mutable next_id : int;
  mutable stack : int list;  (* innermost open span first *)
}

let create ?(clock = Unix.gettimeofday) sink =
  let origin = if Sink.enabled sink then clock () else 0. in
  { sink; clock; origin; next_id = 1; stack = [] }

let null = create ~clock:(fun () -> 0.) Sink.null

let sink t = t.sink

let enabled t = Sink.enabled t.sink

let current_span t = match t.stack with [] -> 0 | id :: _ -> id

let now t = t.clock () -. t.origin

let instant t ~kind ?(attrs = []) name =
  if enabled t then
    Sink.emit t.sink
      {
        Sink.ev_ts = now t;
        ev_kind = kind;
        ev_name = name;
        ev_span = current_span t;
        ev_attrs = attrs;
      }

let with_span t ?(attrs = []) name f =
  if not (enabled t) then f ()
  else begin
    let parent = current_span t in
    let id = t.next_id in
    t.next_id <- id + 1;
    let t0 = now t in
    Sink.emit t.sink
      {
        Sink.ev_ts = t0;
        ev_kind = "span_begin";
        ev_name = name;
        ev_span = id;
        ev_attrs = ("parent", Sink.Int parent) :: attrs;
      };
    t.stack <- id :: t.stack;
    Fun.protect
      ~finally:(fun () ->
        (match t.stack with
        | top :: rest when top = id -> t.stack <- rest
        | stack -> t.stack <- List.filter (fun s -> s <> id) stack);
        let t1 = now t in
        Sink.emit t.sink
          {
            Sink.ev_ts = t1;
            ev_kind = "span_end";
            ev_name = name;
            ev_span = id;
            ev_attrs =
              [ ("parent", Sink.Int parent); ("dur_ms", Sink.Float ((t1 -. t0) *. 1000.)) ];
          })
      f
  end
