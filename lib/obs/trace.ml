(* Span ids are allocated under a mutex and the open-span stack is kept
   per domain, so runs executing on pool workers (see
   {!Impact_support.Pool}) nest their own spans without corrupting each
   other's.  Single-domain behaviour — ids, nesting, event order — is
   unchanged. *)

type t = {
  sink : Sink.t;
  clock : unit -> float;
  origin : float;
  mu : Mutex.t;
  mutable next_id : int;
  stacks : (int, int list) Hashtbl.t;  (* domain id -> innermost-first *)
}

let create ?(clock = Unix.gettimeofday) sink =
  let origin = if Sink.enabled sink then clock () else 0. in
  { sink; clock; origin; mu = Mutex.create (); next_id = 1; stacks = Hashtbl.create 4 }

let null = create ~clock:(fun () -> 0.) Sink.null

let sink t = t.sink

let enabled t = Sink.enabled t.sink

let my_stack t =
  match Hashtbl.find_opt t.stacks (Domain.self () :> int) with
  | Some s -> s
  | None -> []

let set_my_stack t s = Hashtbl.replace t.stacks (Domain.self () :> int) s

let current_span t =
  Mutex.protect t.mu (fun () ->
      match my_stack t with [] -> 0 | id :: _ -> id)

let now t = t.clock () -. t.origin

let instant t ~kind ?(attrs = []) name =
  if enabled t then
    Sink.emit t.sink
      {
        Sink.ev_ts = now t;
        ev_kind = kind;
        ev_name = name;
        ev_span = current_span t;
        ev_dom = (Domain.self () :> int);
        ev_attrs = attrs;
      }

let with_span t ?(attrs = []) name f =
  if not (enabled t) then f ()
  else begin
    let parent, id =
      Mutex.protect t.mu (fun () ->
          let parent = match my_stack t with [] -> 0 | p :: _ -> p in
          let id = t.next_id in
          t.next_id <- id + 1;
          set_my_stack t (id :: my_stack t);
          (parent, id))
    in
    let t0 = now t in
    Sink.emit t.sink
      {
        Sink.ev_ts = t0;
        ev_kind = "span_begin";
        ev_name = name;
        ev_span = id;
        ev_dom = (Domain.self () :> int);
        ev_attrs = ("parent", Sink.Int parent) :: attrs;
      };
    Fun.protect
      ~finally:(fun () ->
        Mutex.protect t.mu (fun () ->
            match my_stack t with
            | top :: rest when top = id -> set_my_stack t rest
            | stack -> set_my_stack t (List.filter (fun s -> s <> id) stack));
        let t1 = now t in
        Sink.emit t.sink
          {
            Sink.ev_ts = t1;
            ev_kind = "span_end";
            ev_name = name;
            ev_span = id;
            ev_dom = (Domain.self () :> int);
            ev_attrs =
              [ ("parent", Sink.Int parent); ("dur_ms", Sink.Float ((t1 -. t0) *. 1000.)) ];
          })
      f
  end
