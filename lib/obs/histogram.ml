(* Fixed-bucket latency histograms with per-domain shards.

   Bucket boundaries are fixed at creation (log-spaced by default), so
   two snapshots of the same histogram — or of two histograms created
   with the same bounds — merge by adding counts element-wise; no
   rebinning, and merge is associative and commutative on the integer
   counts (the float [sum] accumulates in merge order, so it is exact
   only up to float addition).

   Concurrency follows {!Metrics}: each domain owns one shard found
   through a DLS slot; [observe] bumps plain [int array] slots with no
   lock, [snapshot] takes each shard's mutex to read a consistent
   frame.  Bumping racing a read is a word-sized plain access — no
   tearing — and a [Domain.join] before snapshotting makes counts
   exact. *)

type bounds = float array
(* Upper bounds of each finite bucket, strictly increasing; one extra
   overflow bucket catches everything above the last bound. *)

type shard = {
  smu : Mutex.t;
  counts : int array;  (* length = Array.length bounds + 1 *)
  mutable sum : float;
  mutable count : int;
  mutable min_v : float;
  mutable max_v : float;
}

type t =
  | Disabled
  | H of {
      bounds : bounds;
      mu : Mutex.t;  (* guards [shards] *)
      mutable shards : shard list;
      slot : shard option ref Domain.DLS.key;
    }

type snapshot = {
  s_bounds : bounds;
  s_counts : int array;
  s_count : int;
  s_sum : float;
  s_min : float;  (* infinity when empty *)
  s_max : float;  (* neg_infinity when empty *)
}

let default_bounds ~lo ~hi ~per_decade =
  if not (lo > 0. && hi > lo && per_decade > 0) then
    invalid_arg "Histogram.default_bounds";
  let step = 10. ** (1. /. float_of_int per_decade) in
  let rec build acc v =
    if v >= hi then List.rev (hi :: acc) else build (v :: acc) (v *. step)
  in
  Array.of_list (build [] lo)

(* 0.001 ms .. 10 s, 5 buckets per decade: 36 buckets, fine enough for
   p99 on anything from a sub-microsecond no-op to a whole suite run. *)
let latency_ms_bounds = default_bounds ~lo:0.001 ~hi:10_000. ~per_decade:5

let validate_bounds bounds =
  let n = Array.length bounds in
  if n = 0 then invalid_arg "Histogram.create: empty bounds";
  for i = 1 to n - 1 do
    if not (bounds.(i) > bounds.(i - 1)) then
      invalid_arg "Histogram.create: bounds must be strictly increasing"
  done

let create ?(bounds = latency_ms_bounds) () =
  validate_bounds bounds;
  H
    {
      bounds = Array.copy bounds;
      mu = Mutex.create ();
      shards = [];
      slot = Domain.DLS.new_key (fun () -> ref None);
    }

let disabled = Disabled

let enabled = function Disabled -> false | H _ -> true

(* [bucket_index bounds v] is the index of the bucket holding [v]:
   the first bucket whose upper bound is >= v, or the overflow bucket.
   A value exactly on a boundary lands in the bucket it bounds
   (upper-inclusive), so bucket i covers (bounds[i-1], bounds[i]]. *)
let bucket_index (bounds : bounds) v =
  let n = Array.length bounds in
  let lo = ref 0 and hi = ref (n - 1) and found = ref n in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    if bounds.(mid) >= v then begin
      found := mid;
      hi := mid - 1
    end
    else lo := mid + 1
  done;
  !found

let my_shard ~bounds ~mu ~slot t_shards_set =
  let cell = Domain.DLS.get slot in
  match !cell with
  | Some s -> s
  | None ->
    let s =
      {
        smu = Mutex.create ();
        counts = Array.make (Array.length bounds + 1) 0;
        sum = 0.;
        count = 0;
        min_v = infinity;
        max_v = neg_infinity;
      }
    in
    Mutex.protect mu (fun () -> t_shards_set s);
    cell := Some s;
    s

let observe t v =
  match t with
  | Disabled -> ()
  | H h ->
    let s =
      my_shard ~bounds:h.bounds ~mu:h.mu ~slot:h.slot (fun s ->
          h.shards <- s :: h.shards)
    in
    let i = bucket_index h.bounds v in
    s.counts.(i) <- s.counts.(i) + 1;
    s.sum <- s.sum +. v;
    s.count <- s.count + 1;
    if v < s.min_v then s.min_v <- v;
    if v > s.max_v then s.max_v <- v

let empty_snapshot bounds =
  {
    s_bounds = bounds;
    s_counts = Array.make (Array.length bounds + 1) 0;
    s_count = 0;
    s_sum = 0.;
    s_min = infinity;
    s_max = neg_infinity;
  }

let snapshot t =
  match t with
  | Disabled -> empty_snapshot [| 1. |]
  | H h ->
    let shards = Mutex.protect h.mu (fun () -> h.shards) in
    let acc = empty_snapshot h.bounds in
    let counts = acc.s_counts in
    let count = ref 0 and sum = ref 0. in
    let min_v = ref infinity and max_v = ref neg_infinity in
    List.iter
      (fun s ->
        Mutex.protect s.smu (fun () ->
            Array.iteri (fun i c -> counts.(i) <- counts.(i) + c) s.counts;
            count := !count + s.count;
            sum := !sum +. s.sum;
            if s.min_v < !min_v then min_v := s.min_v;
            if s.max_v > !max_v then max_v := s.max_v))
      shards;
    { acc with s_count = !count; s_sum = !sum; s_min = !min_v; s_max = !max_v }

let merge a b =
  if a.s_bounds <> b.s_bounds then
    invalid_arg "Histogram.merge: snapshots have different bounds";
  {
    s_bounds = a.s_bounds;
    s_counts = Array.mapi (fun i c -> c + b.s_counts.(i)) a.s_counts;
    s_count = a.s_count + b.s_count;
    s_sum = a.s_sum +. b.s_sum;
    s_min = min a.s_min b.s_min;
    s_max = max a.s_max b.s_max;
  }

(* Percentile by linear interpolation inside the winning bucket: find
   the bucket where the cumulative count crosses rank q*count, then
   interpolate between its bounds by the fraction of the bucket's own
   count below the rank.  Clamped to the observed min/max so p0/p100
   are exact and no estimate leaves the observed range. *)
let percentile snap q =
  if not (q >= 0. && q <= 1.) then invalid_arg "Histogram.percentile";
  if snap.s_count = 0 then nan
  else begin
    let rank = q *. float_of_int snap.s_count in
    let n = Array.length snap.s_counts in
    let i = ref 0 and cum = ref 0 in
    while
      !i < n - 1
      && float_of_int (!cum + snap.s_counts.(!i)) < rank
    do
      cum := !cum + snap.s_counts.(!i);
      incr i
    done;
    let in_bucket = snap.s_counts.(!i) in
    let lo = if !i = 0 then 0. else snap.s_bounds.(!i - 1) in
    let hi =
      if !i < Array.length snap.s_bounds then snap.s_bounds.(!i)
      else snap.s_max
    in
    let est =
      if in_bucket = 0 then lo
      else
        let frac = (rank -. float_of_int !cum) /. float_of_int in_bucket in
        lo +. ((hi -. lo) *. Float.max 0. (Float.min 1. frac))
    in
    Float.max snap.s_min (Float.min snap.s_max est)
  end

let mean snap =
  if snap.s_count = 0 then nan else snap.s_sum /. float_of_int snap.s_count

let snapshot_to_json snap =
  let pct q = Sink.Float (if snap.s_count = 0 then 0. else percentile snap q) in
  Sink.Obj
    [
      ("count", Sink.Int snap.s_count);
      ("sum", Sink.Float snap.s_sum);
      ("mean", Sink.Float (if snap.s_count = 0 then 0. else mean snap));
      ("min", Sink.Float (if snap.s_count = 0 then 0. else snap.s_min));
      ("max", Sink.Float (if snap.s_count = 0 then 0. else snap.s_max));
      ("p50", pct 0.5);
      ("p90", pct 0.9);
      ("p99", pct 0.99);
    ]
