(** Hierarchical spans over a {!Sink}.

    A tracer maintains a stack of open spans; {!with_span} emits a
    [span_begin]/[span_end] pair around a computation, recording the
    parent span id and the wall-clock duration.  On the {!Sink.null}
    sink nothing is emitted, no event is built, and the clock is never
    read — instrumented code pays one branch. *)

type t

(** [create ?clock sink] is a tracer whose timestamps come from [clock]
    (default [Unix.gettimeofday]), reported relative to the tracer's
    creation instant. *)
val create : ?clock:(unit -> float) -> Sink.t -> t

(** [null] is a tracer over {!Sink.null}. *)
val null : t

val sink : t -> Sink.t

val enabled : t -> bool

(** [current_span t] is the id of the innermost open span, 0 at the
    root. *)
val current_span : t -> int

(** [with_span t ?attrs name f] runs [f ()] inside a fresh span.
    [span_begin] carries [attrs] and a ["parent"] attribute; [span_end]
    repeats the span id and adds ["dur_ms"].  The span is closed even
    when [f] raises. *)
val with_span : t -> ?attrs:(string * Sink.json) list -> string -> (unit -> 'a) -> 'a

(** [instant t ~kind ?attrs name] emits a point event inside the current
    span. *)
val instant : t -> kind:string -> ?attrs:(string * Sink.json) list -> string -> unit
