(* bench/main — regenerates every table of the paper's evaluation and
   times the tool chain with Bechamel.

   Usage:
     dune exec bench/main.exe              tables 1-4 + residual mix + timings
     dune exec bench/main.exe tables       tables only
     dune exec bench/main.exe tables-json  tables 1-4 + aggregates as JSON
     dune exec bench/main.exe ablation     the five ablation sweeps
     dune exec bench/main.exe icache       the instruction-cache extension
     dune exec bench/main.exe speed        Bechamel microbenchmarks only *)

open Bechamel
module Pipeline = Impact_harness.Pipeline
module Report = Impact_harness.Report
module Ablation = Impact_harness.Ablation
module Suite = Impact_bench_progs.Suite
module Benchmark_def = Impact_bench_progs.Benchmark

let print_tables () =
  let results = Pipeline.run_suite () in
  print_string (Report.all results);
  results

let print_ablations () =
  let sweeps =
    [
      ("Ablation A. Arc-weight threshold (paper: 10).", Ablation.threshold_sweep);
      ("Ablation B. Program growth bound (default: 1.2x).", Ablation.growth_sweep);
      ( "Ablation C. Linearisation order (paper: weight-sorted).",
        Ablation.linearization_sweep );
      ( "Ablation D. Selection heuristic (paper: profile-guided).",
        Ablation.heuristic_sweep );
      ( "Ablation E. Post-inline clean-up optimisation (paper: none).",
        Ablation.post_opt_sweep );
      ( "Ablation F. Pointer-callee analysis (paper \u{00a7}2.5: \"provides little help\").",
        Ablation.pointer_analysis_sweep );
    ]
  in
  List.iter
    (fun (title, sweep) ->
      print_string (Ablation.render title (sweep ()));
      print_newline ())
    sweeps

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks                                            *)
(* ------------------------------------------------------------------ *)

let staged_tests results =
  let grep = Suite.find "grep" in
  let grep_source = grep.Benchmark_def.source in
  let input = List.hd (grep.Benchmark_def.inputs ()) in
  let compiled = Impact_il.Lower.lower_source grep_source in
  let { Impact_profile.Profiler.profile; _ } =
    Impact_profile.Profiler.profile compiled ~inputs:[ input ]
  in
  let graph = Impact_callgraph.Callgraph.build compiled profile in
  let linear = Impact_core.Linearize.linearize graph ~seed:42 in
  [
    (* One Test.make per table of the paper. *)
    Test.make ~name:"table1" (Staged.stage (fun () -> Report.table1 results));
    Test.make ~name:"table2" (Staged.stage (fun () -> Report.table2 results));
    Test.make ~name:"table3" (Staged.stage (fun () -> Report.table3 results));
    Test.make ~name:"table4" (Staged.stage (fun () -> Report.table4 results));
    (* The compiler phases producing the measurements, on grep. *)
    Test.make ~name:"phase:parse"
      (Staged.stage (fun () -> Impact_cfront.Parser.parse_program grep_source));
    Test.make ~name:"phase:sema"
      (Staged.stage (fun () -> Impact_cfront.Sema.check_source grep_source));
    Test.make ~name:"phase:lower"
      (Staged.stage (fun () -> Impact_il.Lower.lower_source grep_source));
    Test.make ~name:"phase:interp-run"
      (Staged.stage (fun () -> Impact_interp.Machine.run compiled ~input));
    Test.make ~name:"phase:callgraph"
      (Staged.stage (fun () -> Impact_callgraph.Callgraph.build compiled profile));
    Test.make ~name:"phase:select"
      (Staged.stage (fun () ->
           Impact_core.Select.select graph Impact_core.Config.default linear));
    Test.make ~name:"phase:inline"
      (Staged.stage (fun () -> Impact_core.Inliner.run compiled profile));
    Test.make ~name:"pipeline:wc"
      (Staged.stage (fun () -> Pipeline.run (Suite.find "wc")));
  ]

let run_speed results =
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:false () in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  Printf.printf "\nMicrobenchmarks (time per run, monotonic clock):\n";
  Printf.printf "%-20s %16s %10s\n" "benchmark" "time/run" "samples";
  Printf.printf "%s\n" (String.make 48 '-');
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let raw = Benchmark.run cfg [ instance ] elt in
          let est = Analyze.one ols instance raw in
          let time_ns =
            match Analyze.OLS.estimates est with
            | Some (t :: _) -> t
            | Some [] | None -> nan
          in
          let rendered =
            if time_ns >= 1e9 then Printf.sprintf "%.2f s" (time_ns /. 1e9)
            else if time_ns >= 1e6 then Printf.sprintf "%.2f ms" (time_ns /. 1e6)
            else if time_ns >= 1e3 then Printf.sprintf "%.2f us" (time_ns /. 1e3)
            else Printf.sprintf "%.0f ns" time_ns
          in
          Printf.printf "%-20s %16s %10d\n" (Test.Elt.name elt) rendered
            raw.Benchmark.stats.Benchmark.samples)
        (Test.elements test))
    (staged_tests results)

let print_icache () =
  print_string (Impact_harness.Icache_exp.render (Impact_harness.Icache_exp.run_suite ()))

let () =
  match if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" with
  | "tables" -> ignore (print_tables ())
  | "tables-json" ->
    let results = Pipeline.run_suite () in
    print_endline (Impact_obs.Sink.json_to_string (Report.to_json results))
  | "ablation" -> print_ablations ()
  | "icache" -> print_icache ()
  | "speed" ->
    let results = Pipeline.run_suite () in
    run_speed results
  | "all" ->
    let results = print_tables () in
    print_newline ();
    print_ablations ();
    print_newline ();
    print_icache ();
    run_speed results
  | other ->
    Printf.eprintf
      "unknown mode '%s' (expected tables|tables-json|ablation|icache|speed)\n" other;
    exit 2
