(* bench/load — the impactd load generator.

   Boots a daemon on a temporary socket, opens many concurrent client
   connections (cheap systhreads: each spends its life blocked on
   socket I/O), and replays a mixed request stream against it:

   - warm compiles: one shared source, so after the first miss every
     request is answered from the shared stage cache;
   - cold compiles: generated, pairwise-distinct sources;
   - profiles and reports (the suite's "cmp" benchmark);
   - pings, as the control-plane floor;
   - faulted compiles (one-shot interpreter fault under the degrade
     policy — the daemon runs with fault injection allowed, so these
     exercise the recovery path and, because fault points are
     process-global, the cross-request blast radius);
   - malformed connections: raw garbage instead of frames, on
     dedicated connections.

   Requests refused by admission control (typed Serve/retry-once
   errors) are retried with backoff — the generator exercises load
   shedding rather than hiding from it.

   The run fails loudly ("zero crashes" is the acceptance criterion)
   if any request goes unanswered, any connection dies un-typed, the
   daemon stops responding, or more requests error than the armed
   faults can account for.  Otherwise it writes BENCH_serve.json:
   throughput plus exact (sorted, not bucketed) p50/p90/p99 per
   request class, and the daemon's own stats snapshot.

   When a baseline BENCH_serve.json is given, throughput must stay
   within IMPACT_SERVE_TOLERANCE percent (default 60 — serving
   throughput on a shared CI box is noisy) of it.

   Usage: load.exe [--out FILE] [--baseline FILE] [--clients N]
                   [--per-client N] [--domains N] *)

module Server = Impact_serve.Server
module Client = Impact_serve.Client
module Protocol = Impact_serve.Protocol
module Cache = Impact_harness.Cache
module Pipeline = Impact_harness.Pipeline
module Fault = Impact_support.Fault
module Ierr = Impact_support.Ierr
module Sink = Impact_obs.Sink

let fail fmt = Printf.ksprintf (fun msg -> prerr_endline ("load: " ^ msg); exit 1) fmt

let tolerance_pct =
  match Sys.getenv_opt "IMPACT_SERVE_TOLERANCE" with
  | None | Some "" -> 60.
  | Some v -> (
    match float_of_string_opt v with
    | Some t when t >= 0. -> t
    | Some _ | None -> fail "bad IMPACT_SERVE_TOLERANCE '%s'" v)

(* ------------------------------------------------------------------ *)
(* The request mix                                                     *)
(* ------------------------------------------------------------------ *)

let warm_src =
  {|
extern int getchar();
int tick(int x) { return x + 1; }
int main() { int c, s = 0; while ((c = getchar()) != -1) s = tick(s); return s & 0; }
|}

let cold_src i =
  Printf.sprintf
    {|
extern int getchar();
int stepA(int x) { return x + %d; }
int stepB(int x) { return stepA(x) * 2 - %d; }
int main() { int c, s = 0; while ((c = getchar()) != -1) s = stepB(s); return s & 0; }
|}
    (i + 1) i

type req_class = Ping | Warm | Cold | Profile | Report | Faulted

let class_name = function
  | Ping -> "ping"
  | Warm -> "warm_compile"
  | Cold -> "cold_compile"
  | Profile -> "profile"
  | Report -> "report"
  | Faulted -> "faulted_compile"

(* Deterministic mix: position k of the stream gets a fixed class, so
   every run replays the same workload. *)
let class_of k =
  match k mod 20 with
  | 0 | 1 | 2 | 3 -> Ping
  | 4 | 5 | 6 | 7 | 8 | 9 | 10 | 11 -> Warm
  | 12 | 13 -> Cold
  | 14 | 15 | 16 -> Profile
  | 17 -> Report
  | _ -> Faulted

let kind_of ~seq cls =
  let job source inputs policy =
    { Protocol.default_job with
      Protocol.j_source = source;
      j_inputs = inputs;
      j_policy = policy;
      j_timeout_s = Some 30. }
  in
  match cls with
  | Ping -> Protocol.Ping
  | Warm -> Protocol.Compile (job warm_src [ "abcdef"; "xyz" ] Pipeline.Degrade)
  | Cold -> Protocol.Compile (job (cold_src seq) [ "abcd" ] Pipeline.Degrade)
  | Profile ->
    (* Exercises the wire-level profile_mode field: min-coverage
       instrumentation yields the same profile as full, so the daemon's
       answer (and the warm cache it feeds) is unchanged — only the
       "profile:min" latency label and the cheaper sweep differ. *)
    Protocol.Profile
      { (job warm_src [ "hello world" ] Pipeline.Degrade) with
        Protocol.j_profile_mode = Impact_profile.Coverage.Min }
  | Report -> Protocol.Report ("cmp", job "" [ "" ] Pipeline.Degrade)
  | Faulted ->
    Protocol.Compile
      { (job warm_src [ "abcdef"; "xyz" ] Pipeline.Degrade) with
        Protocol.j_fault =
          Some { Protocol.f_point = Fault.Interp_step; f_after = 0; f_sticky = false } }

(* ------------------------------------------------------------------ *)
(* Accounting                                                          *)
(* ------------------------------------------------------------------ *)

type tally = {
  mu : Mutex.t;
  mutable latencies : (req_class * float) list;  (* ms, answered requests *)
  mutable ok : int;
  mutable typed_errors : (req_class * string) list;
  mutable admission_retries : int;
  mutable protocol_failures : string list;  (* must stay empty *)
}

let tally () =
  { mu = Mutex.create (); latencies = []; ok = 0; typed_errors = [];
    admission_retries = 0; protocol_failures = [] }

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(min (n - 1) (int_of_float (ceil (q *. float_of_int n)) - 1 |> max 0))

let latency_summary lats =
  let a = Array.of_list lats in
  Array.sort compare a;
  let n = Array.length a in
  let mean = if n = 0 then 0. else Array.fold_left ( +. ) 0. a /. float_of_int n in
  Sink.Obj
    [
      ("count", Sink.Int n);
      ("mean_ms", Sink.Float mean);
      ("p50_ms", Sink.Float (percentile a 0.50));
      ("p90_ms", Sink.Float (percentile a 0.90));
      ("p99_ms", Sink.Float (percentile a 0.99));
      ("max_ms", Sink.Float (percentile a 1.0));
    ]

let is_admission_error (e : Ierr.t) =
  e.Ierr.stage = Ierr.Serve
  && e.Ierr.recovery = Ierr.Retry_once
  && String.length e.Ierr.msg >= 17
  && String.sub e.Ierr.msg 0 17 = "server overloaded"

(* ------------------------------------------------------------------ *)
(* Client workers                                                      *)
(* ------------------------------------------------------------------ *)

let run_client t tly socket ~client ~per_client =
  match Client.connect socket with
  | exception e ->
    Mutex.protect tly.mu (fun () ->
        tly.protocol_failures <-
          Printf.sprintf "client %d: connect: %s" client (Printexc.to_string e)
          :: tly.protocol_failures)
  | c ->
    Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
    for k = 0 to per_client - 1 do
      let seq = (client * per_client) + k in
      let cls = class_of seq in
      let kind = kind_of ~seq cls in
      let t0 = Unix.gettimeofday () in
      (* Admission rejections are retried with backoff (bounded). *)
      let rec attempt tries =
        match Client.request c kind with
        | Ok _ ->
          let ms = (Unix.gettimeofday () -. t0) *. 1000. in
          Mutex.protect tly.mu (fun () ->
              tly.ok <- tly.ok + 1;
              tly.latencies <- (cls, ms) :: tly.latencies)
        | Error e when is_admission_error e && tries < 5 ->
          Mutex.protect tly.mu (fun () ->
              tly.admission_retries <- tly.admission_retries + 1);
          Thread.delay (0.02 *. float_of_int (tries + 1));
          attempt (tries + 1)
        | Error e ->
          let ms = (Unix.gettimeofday () -. t0) *. 1000. in
          Mutex.protect tly.mu (fun () ->
              tly.typed_errors <- (cls, Ierr.to_string e) :: tly.typed_errors;
              tly.latencies <- (cls, ms) :: tly.latencies)
        | exception e ->
          Mutex.protect tly.mu (fun () ->
              tly.protocol_failures <-
                Printf.sprintf "client %d req %d (%s): %s" client k
                  (class_name cls) (Printexc.to_string e)
                :: tly.protocol_failures)
      in
      attempt 0
    done;
  ignore t

(* Garbage connections: raw bytes, never a valid frame.  The daemon
   must answer with a typed error or close — and keep serving. *)
let run_vandal tly socket ~n =
  for i = 0 to n - 1 do
    match Client.connect socket with
    | exception e ->
      Mutex.protect tly.mu (fun () ->
          tly.protocol_failures <-
            ("vandal connect: " ^ Printexc.to_string e) :: tly.protocol_failures)
    | c ->
      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
      (* await: whatever comes back (typed error or close) must be
         well-formed at the frame layer; only an unexpected exception
         counts.  The mid-request-disconnect case must NOT await — the
         server is (correctly) still waiting for the rest of the frame,
         so the vandal just vanishes, as a crashed client would. *)
      let await = ref true in
      (match i mod 4 with
      | 0 -> Client.send_raw c "\x7f\xff\xff\xff"  (* oversized prefix *)
      | 1 ->
        Client.send_raw c "\x00\x00\x00\x40{\"v\":1,";  (* truncated *)
        await := false
      | 2 ->
        (* well-framed garbage payload *)
        let body = "!!not json!!\n" in
        let n = String.length body in
        Client.send_raw c
          (Printf.sprintf "%c%c%c%c%s"
             (Char.chr ((n lsr 24) land 0xff)) (Char.chr ((n lsr 16) land 0xff))
             (Char.chr ((n lsr 8) land 0xff)) (Char.chr (n land 0xff)) body)
      | _ -> Client.send_raw c (String.make 7 '\xee'));
      if !await then
        match Client.read_response c with
        | Ok _ | Error _ -> ()
        | exception e ->
          Mutex.protect tly.mu (fun () ->
              tly.protocol_failures <-
                ("vandal read: " ^ Printexc.to_string e) :: tly.protocol_failures)
  done

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let () =
  let out = ref "BENCH_serve.json" in
  let baseline = ref "" in
  let clients = ref 100 in
  let per_client = ref 2 in
  let domains = ref 0 in
  let rec parse_args = function
    | [] -> ()
    | "--out" :: v :: rest -> out := v; parse_args rest
    | "--baseline" :: v :: rest -> baseline := v; parse_args rest
    | "--clients" :: v :: rest -> clients := int_of_string v; parse_args rest
    | "--per-client" :: v :: rest -> per_client := int_of_string v; parse_args rest
    | "--domains" :: v :: rest -> domains := int_of_string v; parse_args rest
    | arg :: _ -> fail "unknown argument '%s'" arg
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let total = !clients * !per_client in
  let nfaulted =
    List.length (List.filter (fun k -> class_of k = Faulted) (List.init total Fun.id))
  in
  let tmp = Filename.temp_file "impact-serve-load" "" in
  Sys.remove tmp;
  Unix.mkdir tmp 0o755;
  Fun.protect ~finally:(fun () -> try rm_rf tmp with Sys_error _ -> ())
  @@ fun () ->
  let socket = Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "impactd-load-%d.sock" (Unix.getpid ())) in
  let cache = Cache.create (Filename.concat tmp "cache") in
  let cfg =
    { (Server.default_config ~socket_path:socket) with
      Server.domains = (if !domains > 0 then Some !domains else None);
      max_pending = 64;
      cache = Some cache;
      allow_faults = true }
  in
  let server = Server.start cfg in
  Fun.protect ~finally:(fun () -> Server.stop server)
  @@ fun () ->
  let tly = tally () in
  let t0 = Unix.gettimeofday () in
  let vandal = Thread.create (fun () -> run_vandal tly socket ~n:(max 8 (total / 10))) () in
  let workers =
    List.init !clients (fun client ->
        Thread.create
          (fun () -> run_client server tly socket ~client ~per_client:!per_client)
          ())
  in
  List.iter Thread.join workers;
  Thread.join vandal;
  let wall_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  (* The daemon must still be fully responsive, and its books intact. *)
  let final_stats =
    let c = Client.connect socket in
    Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
    match Client.request c Protocol.Stats with
    | Ok j -> j
    | Error e -> fail "daemon unresponsive after the run: %s" (Ierr.to_string e)
  in
  let answered = List.length tly.latencies in
  let nerrors = List.length tly.typed_errors in
  if tly.protocol_failures <> [] then begin
    List.iter prerr_endline (List.rev tly.protocol_failures);
    fail "%d connection(s) failed un-typed (above)" (List.length tly.protocol_failures)
  end;
  if answered <> total then
    fail "only %d of %d requests were answered" answered total;
  (* Fault points are process-global: each one-shot arming can fail at
     most one request (the armed one or an unlucky neighbour). *)
  if nerrors > nfaulted then begin
    List.iter (fun (c, m) -> Printf.eprintf "  [%s] %s\n" (class_name c) m)
      (List.rev tly.typed_errors);
    fail "%d typed errors > %d armed faults: daemon state is leaking" nerrors nfaulted
  end;
  let throughput = float_of_int total /. (wall_ms /. 1000.) in
  let per_class cls =
    (class_name cls,
     latency_summary
       (List.filter_map (fun (c, ms) -> if c = cls then Some ms else None)
          tly.latencies))
  in
  let doc =
    Sink.Obj
      [
        ("clients", Sink.Int !clients);
        ("per_client", Sink.Int !per_client);
        ("requests", Sink.Int total);
        ("answered", Sink.Int answered);
        ("ok", Sink.Int tly.ok);
        ("typed_errors", Sink.Int nerrors);
        ("faults_armed", Sink.Int nfaulted);
        ("admission_retries", Sink.Int tly.admission_retries);
        ("wall_ms", Sink.Float wall_ms);
        ("throughput_rps", Sink.Float throughput);
        ( "latency_ms",
          Sink.Obj
            (("all", latency_summary (List.map snd tly.latencies))
             :: List.map per_class [ Ping; Warm; Cold; Profile; Report; Faulted ]) );
        ("server", final_stats);
      ]
  in
  Impact_support.Atomic_io.write_string !out (Sink.json_to_string doc ^ "\n");
  (* Throughput guard against the committed baseline. *)
  (if !baseline <> "" && Sys.file_exists !baseline then
     let ic = open_in !baseline in
     let len = in_channel_length ic in
     let txt = really_input_string ic len in
     close_in ic;
     match Sink.json_of_string txt with
     | exception Sink.Parse_error _ -> ()
     | bj -> (
       match Sink.mem "throughput_rps" bj with
       | Sink.Float base when base > 0. ->
         let floor = base *. (1. -. (tolerance_pct /. 100.)) in
         if throughput < floor then
           fail
             "throughput regressed: %.1f rps vs %.1f baseline (>%g%% tolerance; \
              set IMPACT_SERVE_TOLERANCE to override)"
             throughput base tolerance_pct
       | _ -> ()));
  Printf.printf
    "bench-serve ok: %d requests (%d clients), %.0f rps, p50 %.1f ms, p99 %.1f ms -> %s\n"
    total !clients throughput
    (let a = Array.of_list (List.map snd tly.latencies) in
     Array.sort compare a; percentile a 0.5)
    (let a = Array.of_list (List.map snd tly.latencies) in
     Array.sort compare a; percentile a 0.99)
    !out
