(* bench/smoke — observability smoke test seeding the perf trajectory.

   Runs one small benchmark through the full pipeline with tracing
   enabled, re-parses the emitted JSONL (so an encoder regression fails
   the build), checks structural invariants (balanced spans, one
   decision per call-graph arc), and writes a BENCH_obs.json summary:
   per-stage wall-clock timings plus the benchmark's headline numbers.

   Usage: smoke.exe [--bench NAME] [--trace FILE] [--out FILE]
   Built by `dune build @bench-smoke`. *)

module Pipeline = Impact_harness.Pipeline
module Suite = Impact_bench_progs.Suite
module Obs = Impact_obs.Obs
module Sink = Impact_obs.Sink
module Callgraph = Impact_callgraph.Callgraph
module Inliner = Impact_core.Inliner

let fail fmt = Printf.ksprintf (fun msg -> prerr_endline ("smoke: " ^ msg); exit 1) fmt

let () =
  let bench_name = ref "cmp" in
  let trace_file = ref "smoke_trace.jsonl" in
  let out_file = ref "BENCH_obs.json" in
  let rec parse_args = function
    | [] -> ()
    | "--bench" :: v :: rest -> bench_name := v; parse_args rest
    | "--trace" :: v :: rest -> trace_file := v; parse_args rest
    | "--out" :: v :: rest -> out_file := v; parse_args rest
    | arg :: _ -> fail "unknown argument '%s'" arg
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let bench =
    try Suite.find !bench_name with Not_found -> fail "unknown benchmark '%s'" !bench_name
  in
  (* 1. Run the pipeline with a JSONL sink. *)
  let trace_tmp = Impact_support.Atomic_io.tmp_path !trace_file in
  let oc = open_out trace_tmp in
  (* A pipeline failure must not leave the .tmp trace behind. *)
  let r =
    match
      let obs = Obs.create (Sink.jsonl oc) in
      let r = Pipeline.run ~obs bench in
      Obs.finish obs;
      r
    with
    | r ->
      close_out oc;
      Sys.rename trace_tmp !trace_file;
      r
    | exception e ->
      close_out_noerr oc;
      (try Sys.remove trace_tmp with Sys_error _ -> ());
      raise e
  in
  (* 2. Re-parse every line: the trace must be valid JSONL. *)
  let ic = open_in !trace_file in
  let events = ref [] in
  (try
     while true do
       let line = input_line ic in
       if String.trim line <> "" then
         match Sink.event_of_line line with
         | ev -> events := ev :: !events
         | exception Sink.Parse_error msg -> fail "invalid JSONL line: %s (%s)" line msg
     done
   with End_of_file -> ());
  close_in ic;
  let events = List.rev !events in
  if events = [] then fail "trace is empty";
  (* 3. Structural invariants. *)
  let count p = List.length (List.filter p events) in
  let begins = count (fun e -> e.Sink.ev_kind = "span_begin") in
  let ends = count (fun e -> e.Sink.ev_kind = "span_end") in
  if begins <> ends then fail "unbalanced spans: %d begin, %d end" begins ends;
  let decisions = count (fun e -> e.Sink.ev_kind = "decision") in
  let arcs = Callgraph.arc_count r.Pipeline.inliner.Inliner.graph in
  if decisions <> arcs then
    fail "decision log covers %d arcs, call graph has %d" decisions arcs;
  (* 4. Per-stage timings from span_end durations. *)
  let stages = Hashtbl.create 16 in
  List.iter
    (fun (e : Sink.event) ->
      if e.Sink.ev_kind = "span_end" then begin
        let dur =
          match Sink.mem "dur_ms" (Sink.Obj e.Sink.ev_attrs) with
          | Sink.Float x -> x
          | Sink.Int n -> float_of_int n
          | _ -> 0.
        in
        let prev = try Hashtbl.find stages e.Sink.ev_name with Not_found -> 0. in
        Hashtbl.replace stages e.Sink.ev_name (prev +. dur)
      end)
    events;
  let stages_json =
    Hashtbl.fold (fun k v acc -> (k, Sink.Float v) :: acc) stages []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let verdicts verdict =
    count (fun e ->
        e.Sink.ev_kind = "decision"
        && Sink.mem "verdict" (Sink.Obj e.Sink.ev_attrs) = Sink.String verdict)
  in
  let summary =
    Sink.Obj
      [
        ("benchmark", Sink.String !bench_name);
        ("events", Sink.Int (List.length events));
        ("stages_ms", Sink.Obj stages_json);
        ( "decisions",
          Sink.Obj
            [
              ("total", Sink.Int decisions);
              ("selected", Sink.Int (verdicts "selected"));
              ("rejected", Sink.Int (verdicts "rejected"));
              ("not_expandable", Sink.Int (verdicts "not_expandable"));
            ] );
        ( "aggregates",
          Sink.Obj
            [
              ("code_increase_pct", Sink.Float (Pipeline.code_increase r));
              ("call_decrease_pct", Sink.Float (Pipeline.call_decrease r));
              ("size_before", Sink.Int r.Pipeline.inliner.Inliner.size_before);
              ("size_after", Sink.Int r.Pipeline.inliner.Inliner.size_after);
              ("outputs_match", Sink.Bool r.Pipeline.outputs_match);
            ] );
      ]
  in
  Impact_support.Atomic_io.write_string !out_file
    (Sink.json_to_string summary ^ "\n");
  Printf.printf "bench-smoke ok: %s, %d events, %d decisions -> %s\n" !bench_name
    (List.length events) decisions !out_file
