(* bench/scaling — the domain-scaling harness on its own.

   Sweeps the profiling suite across jobs=1/2/4 with the flight
   recorder attached (see Impact_harness.Perf.scaling_sweep): per-level
   wall clock, queue-vs-run time and GC deltas, an unclamped diagnostic
   level with the literal top job count, and the flight-recorder
   verdict explaining the curve.  Writes the sweep as a standalone
   BENCH_scaling.json and fails when the jobs=4 vs jobs=1 speedup falls
   below IMPACT_SCALING_FLOOR (default 1.0: asking for more parallelism
   must never cost wall time).

   Usage: scaling.exe [--out FILE] [--jobs N,N,...]
   Built by `dune build @bench-scaling`. *)

module Perf = Impact_harness.Perf
module Sink = Impact_obs.Sink

let fail fmt =
  Printf.ksprintf (fun msg -> prerr_endline ("scaling: " ^ msg); exit 1) fmt

let scaling_floor () =
  match Sys.getenv_opt "IMPACT_SCALING_FLOOR" with
  | None | Some "" -> 1.0
  | Some v -> (
    match float_of_string_opt v with
    | Some f when f >= 0. -> f
    | Some _ | None -> fail "bad IMPACT_SCALING_FLOOR '%s'" v)

let parse_jobs s =
  let parts = String.split_on_char ',' s in
  let jobs =
    List.map
      (fun p ->
        match int_of_string_opt (String.trim p) with
        | Some j when j >= 1 -> j
        | Some _ | None -> fail "bad job count '%s' in '%s'" p s)
      parts
  in
  match jobs with [] -> fail "empty job list '%s'" s | js -> js

let () =
  let out_file = ref "BENCH_scaling.json" in
  let job_counts = ref [ 1; 2; 4 ] in
  let rec parse_args = function
    | [] -> ()
    | "--out" :: v :: rest -> out_file := v; parse_args rest
    | "--jobs" :: v :: rest -> job_counts := parse_jobs v; parse_args rest
    | arg :: _ -> fail "unknown argument '%s'" arg
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let sc = Perf.scaling_sweep ~job_counts:!job_counts () in
  Impact_support.Atomic_io.write_string !out_file
    (Sink.json_to_string (Perf.scaling_to_json sc) ^ "\n");
  List.iter
    (fun (l : Perf.scaling_level) ->
      Printf.printf
        "scaling: %d job(s) -> %d domain(s): %.0f ms (queue %.1f ms, run %.1f \
         ms, %d minor / %d major gc)\n"
        l.Perf.sl_jobs l.Perf.sl_effective_jobs l.Perf.sl_wall_ms
        l.Perf.sl_flight.Impact_obs.Flight.f_queue_ms
        l.Perf.sl_flight.Impact_obs.Flight.f_run_ms
        l.Perf.sl_flight.Impact_obs.Flight.f_minor_collections
        l.Perf.sl_flight.Impact_obs.Flight.f_major_collections)
    sc.Perf.sc_levels;
  Printf.printf "scaling: unclamped diagnostic, %d domain(s): %.0f ms\n"
    sc.Perf.sc_unclamped.Perf.sl_jobs sc.Perf.sc_unclamped.Perf.sl_wall_ms;
  Printf.printf "scaling: verdict: %s\n" sc.Perf.sc_verdict;
  Printf.printf "scaling: recommended domains: %d measured, %d runtime -> %s\n"
    sc.Perf.sc_recommended sc.Perf.sc_recommended_runtime !out_file;
  let jobs = List.map (fun l -> l.Perf.sl_jobs) sc.Perf.sc_levels in
  let lo = List.fold_left min max_int jobs in
  let hi = List.fold_left max 1 jobs in
  let wall j =
    match List.find_opt (fun l -> l.Perf.sl_jobs = j) sc.Perf.sc_levels with
    | Some l -> l.Perf.sl_wall_ms
    | None -> 0.
  in
  let w_lo = wall lo and w_hi = wall hi in
  let speedup = if w_hi > 0. then w_lo /. w_hi else 0. in
  let eff j =
    match List.find_opt (fun l -> l.Perf.sl_jobs = j) sc.Perf.sc_levels with
    | Some l -> l.Perf.sl_effective_jobs
    | None -> 1
  in
  let floor = scaling_floor () in
  if eff lo = eff hi && speedup < floor then
    (* Identical post-clamp configuration at both ends: the delta is
       measurement noise, not a scaling cost. *)
    Printf.printf
      "scaling: guard ok: jobs=%d clamps to the jobs=%d configuration (%d \
       domain(s)); wall delta %.2fx is noise (floor %.2f)\n"
      hi lo (eff lo) speedup floor
  else if speedup < floor then
    fail
      "floor violated: jobs=%d sweep %.0f ms vs jobs=%d %.0f ms (%.2fx < %.2f \
       floor after %d attempt(s); set IMPACT_SCALING_FLOOR to override)"
      hi w_hi lo w_lo speedup floor sc.Perf.sc_attempts
  else
    Printf.printf "scaling: guard ok: jobs=%d %.2fx vs jobs=%d (floor %.2f)\n"
      hi speedup lo floor
