(* bench/perf — compile-time benchmarks of the tool chain itself.

   Times the whole suite end to end (wall clock), each pipeline stage
   per benchmark with Bechamel — including profiling under both
   interpreter cores (threaded vs. reference) and the physical
   expansion under both engines (indexed vs. rescan) — and a domain
   scaling sweep of parallel profiling, then writes a BENCH_perf.json
   summary.

   With --baseline FILE, the fresh suite wall clock is guarded against
   the committed baseline: the run fails if it regresses by more than
   IMPACT_PERF_TOLERANCE percent (default 25).

   The scaling sweep runs with the flight recorder attached and is
   guarded too: the run fails when the jobs=4 vs jobs=1 speedup falls
   below IMPACT_SCALING_FLOOR (default 1.0 — more parallelism must
   never cost wall time).

   Usage: perf.exe [--out FILE] [--quota SECONDS] [--baseline FILE]
   Built by `dune build @bench-perf`. *)

module Perf = Impact_harness.Perf
module Pipeline = Impact_harness.Pipeline
module Sink = Impact_obs.Sink

let fail fmt = Printf.ksprintf (fun msg -> prerr_endline ("perf: " ^ msg); exit 1) fmt

let warn fmt = Printf.ksprintf (fun msg -> prerr_endline ("perf: warning: " ^ msg)) fmt

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let tolerance_pct () =
  match Sys.getenv_opt "IMPACT_PERF_TOLERANCE" with
  | None | Some "" -> 25.
  | Some v -> (
    match float_of_string_opt v with
    | Some t when t >= 0. -> t
    | Some _ | None -> fail "bad IMPACT_PERF_TOLERANCE '%s'" v)

(* Minimum acceptable jobs=hi vs jobs=lo speedup of the clamped scaling
   sweep.  The default 1.0 encodes the PR-level guarantee: asking for
   more parallelism must never cost wall time. *)
let scaling_floor () =
  match Sys.getenv_opt "IMPACT_SCALING_FLOOR" with
  | None | Some "" -> 1.0
  | Some v -> (
    match float_of_string_opt v with
    | Some f when f >= 0. -> f
    | Some _ | None -> fail "bad IMPACT_SCALING_FLOOR '%s'" v)

(* Noise slack (percent) on the min-vs-full profiling guard.  Min-mode
   instruments a subset of sites, so it can only do less counting work
   than full — the guarantee is "never slower", and the slack only
   absorbs scheduler noise on benchmarks too small to show the win. *)
let profile_tolerance_pct () =
  match Sys.getenv_opt "IMPACT_PROFILE_TOLERANCE" with
  | None | Some "" -> 10.
  | Some v -> (
    match float_of_string_opt v with
    | Some t when t >= 0. -> t
    | Some _ | None -> fail "bad IMPACT_PROFILE_TOLERANCE '%s'" v)

let guard_profiling (costs : Perf.profiling_cost list) =
  let tol = profile_tolerance_pct () in
  let module Coverage = Impact_profile.Coverage in
  List.iter
    (fun (pc : Perf.profiling_cost) ->
      let full = Perf.profiling_wall pc Coverage.Full in
      let min_w = Perf.profiling_wall pc Coverage.Min in
      if full > 0. && min_w > full *. (1. +. (tol /. 100.)) then
        fail
          "min-coverage profiling slower than full on %s: %.2f ms vs %.2f ms \
           (>%g%% tolerance; set IMPACT_PROFILE_TOLERANCE to override)"
          pc.Perf.pc_bench min_w full tol)
    costs;
  let total mode =
    List.fold_left (fun a pc -> a +. Perf.profiling_wall pc mode) 0. costs
  in
  let sites which =
    List.fold_left (fun a (pc : Perf.profiling_cost) -> a + which pc) 0 costs
  in
  let counted = sites (fun pc -> pc.Perf.pc_counted_sites) in
  let all_sites = sites (fun pc -> pc.Perf.pc_total_sites) in
  Printf.printf
    "  profiling modes: full %.0f ms, min %.0f ms, sampled %.0f ms over the \
     suite; min instruments %d of %d sites (%.0f%%)\n"
    (total Coverage.Full) (total Coverage.Min) (total Coverage.Sampled) counted
    all_sites
    (100. *. float_of_int counted /. float_of_int (max all_sites 1));
  Printf.printf "  profiling guard ok: min <= full on every benchmark \
                 (tolerance %g%%)\n"
    tol

let level_wall (sc : Perf.scaling) jobs =
  match List.find_opt (fun l -> l.Perf.sl_jobs = jobs) sc.Perf.sc_levels with
  | Some l -> l.Perf.sl_wall_ms
  | None -> 0.

let guard_scaling (sc : Perf.scaling) =
  let level jobs =
    List.find_opt (fun l -> l.Perf.sl_jobs = jobs) sc.Perf.sc_levels
  in
  let jobs = List.map (fun l -> l.Perf.sl_jobs) sc.Perf.sc_levels in
  let lo = List.fold_left min max_int jobs in
  let hi = List.fold_left max 1 jobs in
  let w_lo = level_wall sc lo and w_hi = level_wall sc hi in
  let speedup = if w_hi > 0. then w_lo /. w_hi else 0. in
  let same_config =
    match (level lo, level hi) with
    | Some a, Some b -> a.Perf.sl_effective_jobs = b.Perf.sl_effective_jobs
    | _ -> false
  in
  let floor = scaling_floor () in
  if same_config && speedup < floor then
    (* Both levels clamped to the same domain count, so they ran the
       identical configuration: the wall-clock delta is measurement
       noise, not a scaling cost.  Report it, don't fail on it. *)
    Printf.printf
      "  scaling guard ok: jobs=%d clamps to the jobs=%d configuration (%d \
       domain(s)); wall delta %.2fx is noise (floor %.2f)\n"
      hi lo
      (match level lo with Some l -> l.Perf.sl_effective_jobs | None -> 1)
      speedup floor
  else if speedup < floor then
    fail
      "scaling floor violated: jobs=%d sweep %.0f ms vs jobs=%d %.0f ms \
       (%.2fx < %.2f floor after %d attempt(s); set IMPACT_SCALING_FLOOR to \
       override)"
      hi w_hi lo w_lo speedup floor sc.Perf.sc_attempts
  else
    Printf.printf "  scaling guard ok: jobs=%d %.2fx vs jobs=%d (floor %.2f)\n"
      hi speedup lo floor

let baseline_wall_ms path =
  match Sink.json_of_string (read_file path) with
  | json -> (
    match Sink.mem "suite_wall_ms" json with
    | Sink.Float ms -> ms
    | Sink.Int n -> float_of_int n
    | _ -> fail "baseline %s lacks suite_wall_ms" path)
  | exception Sink.Parse_error msg -> fail "baseline %s: %s" path msg
  | exception Sys_error msg -> fail "baseline: %s" msg

let () =
  let out_file = ref "BENCH_perf.json" in
  let quota = ref 0.1 in
  let baseline = ref None in
  let rec parse_args = function
    | [] -> ()
    | "--out" :: v :: rest -> out_file := v; parse_args rest
    | "--baseline" :: v :: rest -> baseline := Some v; parse_args rest
    | "--quota" :: v :: rest -> (
      match float_of_string_opt v with
      | Some q when q > 0. -> quota := q; parse_args rest
      | Some _ | None -> fail "bad quota '%s'" v)
    | arg :: _ -> fail "unknown argument '%s'" arg
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  (* End-to-end wall clock for one full suite run — the headline number
     that must not regress.  Sequential on purpose (and recorded as
     such in the artefact): the baseline guard compares wall clocks, so
     the job count must be pinned, not inherited from the machine. *)
  let suite_jobs = 1 in
  let t0 = Unix.gettimeofday () in
  let results = Pipeline.run_suite ~jobs:suite_jobs () in
  let suite_wall_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  if not (List.for_all (fun r -> r.Pipeline.outputs_match) results) then
    fail "inlined outputs diverge from the un-inlined run";
  let perfs = Perf.measure_suite ~quota:!quota () in
  let profiling = Perf.profiling_costs () in
  let scaling = Perf.scaling_sweep () in
  let cache = Perf.cache_cold_warm ~jobs:suite_jobs () in
  let devirt = Perf.devirt_ablation () in
  let json =
    Perf.to_json ~suite_wall_ms ~suite_jobs ~scaling ~cache ~profiling ~devirt
      perfs
  in
  Impact_support.Atomic_io.write_string !out_file (Sink.json_to_string json ^ "\n");
  let indexed = Perf.stage_total "expand" perfs in
  let rescan = Perf.stage_total "expand_rescan" perfs in
  let threaded = Perf.stage_total "profile" perfs in
  let reference = Perf.stage_total "profile_reference" perfs in
  let engine_speedup = if threaded > 0. then reference /. threaded else 0. in
  Printf.printf
    "bench-perf ok: suite %.0f ms, profile %.0f us threaded vs %.0f us reference \
     (%.2fx), expand %.0f us indexed vs %.0f us rescan (%.2fx) -> %s\n"
    suite_wall_ms (threaded /. 1e3) (reference /. 1e3) engine_speedup
    (indexed /. 1e3) (rescan /. 1e3)
    (if indexed > 0. then rescan /. indexed else 0.)
    !out_file;
  List.iter
    (fun (l : Perf.scaling_level) ->
      Printf.printf "  profile sweep, %d job(s) -> %d domain(s): %.0f ms\n"
        l.Perf.sl_jobs l.Perf.sl_effective_jobs l.Perf.sl_wall_ms)
    scaling.Perf.sc_levels;
  Printf.printf "  unclamped diagnostic, %d domain(s): %.0f ms\n"
    scaling.Perf.sc_unclamped.Perf.sl_jobs
    scaling.Perf.sc_unclamped.Perf.sl_wall_ms;
  Printf.printf "  scaling verdict: %s\n" scaling.Perf.sc_verdict;
  Printf.printf "  recommended domains: %d measured, %d runtime\n"
    scaling.Perf.sc_recommended scaling.Perf.sc_recommended_runtime;
  Printf.printf
    "  stage cache: cold %.0f ms, warm %.0f ms (%.1fx; warm %d hit(s), %d miss(es))\n"
    cache.Perf.cache_cold_ms cache.Perf.cache_warm_ms
    (if cache.Perf.cache_warm_ms > 0. then
       cache.Perf.cache_cold_ms /. cache.Perf.cache_warm_ms
     else 0.)
    cache.Perf.warm_hits cache.Perf.warm_misses;
  if cache.Perf.warm_misses > 0 then
    warn "warm cache rerun still missed %d stage(s)" cache.Perf.warm_misses;
  List.iter
    (fun (row : Perf.devirt_row) ->
      Printf.printf
        "  devirt ablation: %s pointer residual %.1f%% -> %.1f%% (%d site(s) \
         speculated)\n"
        row.Perf.da_bench row.Perf.da_ptr_pct_off row.Perf.da_ptr_pct_on
        row.Perf.da_speculated)
    devirt;
  List.iter
    (fun (row : Perf.devirt_row) ->
      if not row.Perf.da_outputs_match then
        fail "devirted outputs diverge on %s" row.Perf.da_bench)
    devirt;
  guard_profiling profiling;
  guard_scaling scaling;
  if engine_speedup < 2. && engine_speedup > 0. then
    warn "threaded engine only %.2fx faster than reference (target: 2x)"
      engine_speedup;
  match !baseline with
  | None -> ()
  | Some path ->
    let base = baseline_wall_ms path in
    let tol = tolerance_pct () in
    let limit = base *. (1. +. (tol /. 100.)) in
    if suite_wall_ms > limit then
      fail
        "suite wall clock regressed: %.0f ms vs baseline %.0f ms (+%.0f%% > %.0f%% \
         tolerance; set IMPACT_PERF_TOLERANCE to override)"
        suite_wall_ms base
        (100. *. ((suite_wall_ms /. base) -. 1.))
        tol
    else
      Printf.printf "  perf guard ok: %.0f ms vs baseline %.0f ms (tolerance %.0f%%)\n"
        suite_wall_ms base tol
