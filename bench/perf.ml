(* bench/perf — compile-time benchmarks of the tool chain itself.

   Times the whole suite end to end (wall clock), each pipeline stage
   per benchmark with Bechamel — including profiling under both
   interpreter cores (threaded vs. reference) and the physical
   expansion under both engines (indexed vs. rescan) — and a domain
   scaling sweep of parallel profiling, then writes a BENCH_perf.json
   summary.

   With --baseline FILE, the fresh suite wall clock is guarded against
   the committed baseline: the run fails if it regresses by more than
   IMPACT_PERF_TOLERANCE percent (default 25).

   Usage: perf.exe [--out FILE] [--quota SECONDS] [--baseline FILE]
   Built by `dune build @bench-perf`. *)

module Perf = Impact_harness.Perf
module Pipeline = Impact_harness.Pipeline
module Pool = Impact_support.Pool
module Sink = Impact_obs.Sink

let fail fmt = Printf.ksprintf (fun msg -> prerr_endline ("perf: " ^ msg); exit 1) fmt

let warn fmt = Printf.ksprintf (fun msg -> prerr_endline ("perf: warning: " ^ msg)) fmt

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let tolerance_pct () =
  match Sys.getenv_opt "IMPACT_PERF_TOLERANCE" with
  | None | Some "" -> 25.
  | Some v -> (
    match float_of_string_opt v with
    | Some t when t >= 0. -> t
    | Some _ | None -> fail "bad IMPACT_PERF_TOLERANCE '%s'" v)

let baseline_wall_ms path =
  match Sink.json_of_string (read_file path) with
  | json -> (
    match Sink.mem "suite_wall_ms" json with
    | Sink.Float ms -> ms
    | Sink.Int n -> float_of_int n
    | _ -> fail "baseline %s lacks suite_wall_ms" path)
  | exception Sink.Parse_error msg -> fail "baseline %s: %s" path msg
  | exception Sys_error msg -> fail "baseline: %s" msg

let () =
  let out_file = ref "BENCH_perf.json" in
  let quota = ref 0.1 in
  let baseline = ref None in
  let rec parse_args = function
    | [] -> ()
    | "--out" :: v :: rest -> out_file := v; parse_args rest
    | "--baseline" :: v :: rest -> baseline := Some v; parse_args rest
    | "--quota" :: v :: rest -> (
      match float_of_string_opt v with
      | Some q when q > 0. -> quota := q; parse_args rest
      | Some _ | None -> fail "bad quota '%s'" v)
    | arg :: _ -> fail "unknown argument '%s'" arg
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  (* End-to-end wall clock for one full suite run — the headline number
     that must not regress.  Sequential on purpose (and recorded as
     such in the artefact): the baseline guard compares wall clocks, so
     the job count must be pinned, not inherited from the machine. *)
  let suite_jobs = 1 in
  let t0 = Unix.gettimeofday () in
  let results = Pipeline.run_suite ~jobs:suite_jobs () in
  let suite_wall_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  if not (List.for_all (fun r -> r.Pipeline.outputs_match) results) then
    fail "inlined outputs diverge from the un-inlined run";
  let perfs = Perf.measure_suite ~quota:!quota () in
  let scaling = Perf.domain_scaling () in
  let cache = Perf.cache_cold_warm ~jobs:suite_jobs () in
  let json = Perf.to_json ~suite_wall_ms ~suite_jobs ~scaling ~cache perfs in
  Impact_support.Atomic_io.write_string !out_file (Sink.json_to_string json ^ "\n");
  let indexed = Perf.stage_total "expand" perfs in
  let rescan = Perf.stage_total "expand_rescan" perfs in
  let threaded = Perf.stage_total "profile" perfs in
  let reference = Perf.stage_total "profile_reference" perfs in
  let engine_speedup = if threaded > 0. then reference /. threaded else 0. in
  Printf.printf
    "bench-perf ok: suite %.0f ms, profile %.0f us threaded vs %.0f us reference \
     (%.2fx), expand %.0f us indexed vs %.0f us rescan (%.2fx) -> %s\n"
    suite_wall_ms (threaded /. 1e3) (reference /. 1e3) engine_speedup
    (indexed /. 1e3) (rescan /. 1e3)
    (if indexed > 0. then rescan /. indexed else 0.)
    !out_file;
  let cores = Pool.default_jobs () in
  List.iter
    (fun (jobs, ms) -> Printf.printf "  profile sweep, %d job(s): %.0f ms\n" jobs ms)
    scaling;
  Printf.printf
    "  stage cache: cold %.0f ms, warm %.0f ms (%.1fx; warm %d hit(s), %d miss(es))\n"
    cache.Perf.cache_cold_ms cache.Perf.cache_warm_ms
    (if cache.Perf.cache_warm_ms > 0. then
       cache.Perf.cache_cold_ms /. cache.Perf.cache_warm_ms
     else 0.)
    cache.Perf.warm_hits cache.Perf.warm_misses;
  if cache.Perf.warm_misses > 0 then
    warn "warm cache rerun still missed %d stage(s)" cache.Perf.warm_misses;
  (match (List.assoc_opt 1 scaling, List.assoc_opt 4 scaling) with
  | Some one, Some four when four >= one ->
    (* On a single hardware core, extra domains can only add overhead;
       report rather than fail so the artefact records honest numbers. *)
    warn "4-domain sweep (%.0f ms) not faster than 1 domain (%.0f ms) on %d core(s)"
      four one cores
  | _ -> ());
  if engine_speedup < 2. && engine_speedup > 0. then
    warn "threaded engine only %.2fx faster than reference (target: 2x)"
      engine_speedup;
  match !baseline with
  | None -> ()
  | Some path ->
    let base = baseline_wall_ms path in
    let tol = tolerance_pct () in
    let limit = base *. (1. +. (tol /. 100.)) in
    if suite_wall_ms > limit then
      fail
        "suite wall clock regressed: %.0f ms vs baseline %.0f ms (+%.0f%% > %.0f%% \
         tolerance; set IMPACT_PERF_TOLERANCE to override)"
        suite_wall_ms base
        (100. *. ((suite_wall_ms /. base) -. 1.))
        tol
    else
      Printf.printf "  perf guard ok: %.0f ms vs baseline %.0f ms (tolerance %.0f%%)\n"
        suite_wall_ms base tol
