(* bench/perf — compile-time benchmarks of the tool chain itself.

   Times the whole suite end to end (wall clock) and each pipeline
   stage per benchmark with Bechamel, including the physical expansion
   under both engines (indexed vs. the reference rescan), then writes
   a BENCH_perf.json summary.

   Usage: perf.exe [--out FILE] [--quota SECONDS]
   Built by `dune build @bench-perf`. *)

module Perf = Impact_harness.Perf
module Pipeline = Impact_harness.Pipeline
module Sink = Impact_obs.Sink

let fail fmt = Printf.ksprintf (fun msg -> prerr_endline ("perf: " ^ msg); exit 1) fmt

let () =
  let out_file = ref "BENCH_perf.json" in
  let quota = ref 0.1 in
  let rec parse_args = function
    | [] -> ()
    | "--out" :: v :: rest -> out_file := v; parse_args rest
    | "--quota" :: v :: rest -> (
      match float_of_string_opt v with
      | Some q when q > 0. -> quota := q; parse_args rest
      | Some _ | None -> fail "bad quota '%s'" v)
    | arg :: _ -> fail "unknown argument '%s'" arg
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  (* End-to-end wall clock for one full suite run — the headline number
     that must not regress. *)
  let t0 = Unix.gettimeofday () in
  let results = Pipeline.run_suite () in
  let suite_wall_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  if not (List.for_all (fun r -> r.Pipeline.outputs_match) results) then
    fail "inlined outputs diverge from the un-inlined run";
  let perfs = Perf.measure_suite ~quota:!quota () in
  let json = Perf.to_json ~suite_wall_ms perfs in
  let out = open_out !out_file in
  output_string out (Sink.json_to_string json);
  output_char out '\n';
  close_out out;
  let indexed = Perf.stage_total "expand" perfs in
  let rescan = Perf.stage_total "expand_rescan" perfs in
  Printf.printf
    "bench-perf ok: suite %.0f ms, expand %.0f us indexed vs %.0f us rescan (%.2fx) -> %s\n"
    suite_wall_ms (indexed /. 1e3) (rescan /. 1e3)
    (if indexed > 0. then rescan /. indexed else 0.)
    !out_file
