(* impactd — the compile-as-a-service daemon.

   Serves compile/profile/report/stats requests over a Unix-domain
   socket speaking the length-prefixed JSON frame protocol
   (Impact_serve.Protocol).  Work runs on a fixed set of worker
   domains; the optional --cache directory is shared across every
   request, so a source text any client has compiled before is a warm
   hit for all of them.

   Tracing covers the serving session end to end: --trace FILE records
   every request span (and the pipeline spans beneath it) as JSONL, or
   as a Chrome trace with one track per worker domain under
   --trace-format chrome.  The stream lands in FILE.tmp and is renamed
   into place at clean shutdown, so a crashed daemon never leaves a
   partial artifact that looks complete.

   Shutdown: SIGINT, SIGTERM, or a client's {"kind":"shutdown"}
   request; all three drain in-flight work before the process exits. *)

module Server = Impact_serve.Server
module Cache = Impact_harness.Cache
module Obs = Impact_obs.Obs
module Sink = Impact_obs.Sink
module Atomic_io = Impact_support.Atomic_io
open Cmdliner

let socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "s"; "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket to listen on (a stale file is replaced)")

let cache_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache" ] ~docv:"DIR"
        ~doc:
          "Content-addressed stage cache shared by every request; created \
           if missing")

let domains_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "domains" ] ~docv:"N"
        ~doc:"Worker domains (default: the machine's recommended count)")

let max_pending_arg =
  Arg.(
    value & opt int 64
    & info [ "max-pending" ] ~docv:"N"
        ~doc:
          "Admission cap: refuse new compile/profile/report requests (with \
           a typed retryable error) while $(docv) jobs are queued or \
           running")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Write the serving session's event trace to $(docv)")

let trace_format_arg =
  let fmt = Arg.enum [ ("jsonl", `Jsonl); ("chrome", `Chrome) ] in
  Arg.(
    value & opt fmt `Jsonl
    & info [ "trace-format" ] ~docv:"FORMAT"
        ~doc:
          "Format of the $(b,--trace) file: $(b,jsonl) (one event object \
           per line, the default) or $(b,chrome) (Chrome trace-event JSON \
           with one track per worker domain — load it in ui.perfetto.dev)")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:"Write the final counter/gauge snapshot as JSON at shutdown")

let allow_faults_arg =
  Arg.(
    value & flag
    & info [ "allow-fault-injection" ]
        ~doc:
          "Honor per-request $(b,fault) specs (chaos drills and tests \
           only; fault points are process-global, so a faulted request \
           can perturb concurrent neighbours)")

let quiet_arg =
  Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"No startup banner")

let serve socket cache_dir domains max_pending trace trace_format metrics_out
    allow_faults quiet =
  (* Sink wiring mirrors impactc's with_obs, adapted to a daemon: the
     chrome format needs the whole event list (span pairing), so it
     buffers in memory; jsonl streams to FILE.tmp, renamed at clean
     shutdown. *)
  let jsonl_trace = match trace_format with `Jsonl -> trace | `Chrome -> None in
  let tmp = Option.map Atomic_io.tmp_path jsonl_trace in
  let oc = Option.map open_out_bin tmp in
  let need_obs = trace <> None || metrics_out <> None in
  let sink =
    match oc with
    | Some oc -> Sink.jsonl oc
    | None -> if need_obs then Sink.memory () else Sink.null
  in
  let obs = if need_obs then Obs.create sink else Obs.null in
  let cfg =
    {
      Server.socket_path = socket;
      domains;
      max_pending;
      cache = Option.map (fun dir -> Cache.create dir) cache_dir;
      obs;
      allow_faults;
    }
  in
  let t = Server.start cfg in
  if not quiet then begin
    Printf.printf "impactd: listening on %s (%s domains, max-pending %d%s)\n"
      socket
      (match domains with Some n -> string_of_int n | None -> "auto")
      max_pending
      (match cache_dir with Some d -> ", cache " ^ d | None -> "");
    flush stdout
  end;
  let on_signal _ = Server.request_shutdown t in
  Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
  Server.wait t;
  if not quiet then begin
    print_endline "impactd: shutting down";
    flush stdout
  end;
  Server.stop t;
  Obs.finish ?metrics_out obs;
  (match Sink.broken sink with
  | Some e ->
    Option.iter close_out_noerr oc;
    Option.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) tmp;
    Printf.eprintf "impactd: warning: trace discarded: %s\n"
      (Printexc.to_string e)
  | None ->
    Option.iter close_out_noerr oc;
    Option.iter
      (fun p -> Sys.rename p (Option.get jsonl_trace))
      tmp;
    (match (trace, trace_format) with
    | Some path, `Chrome ->
      Impact_obs.Trace_export.write_chrome path (Sink.events sink)
    | _ -> ()))

let cmd =
  let doc = "inline-expansion compile service over a Unix-domain socket" in
  Cmd.v
    (Cmd.info "impactd" ~version:"1.0.0" ~doc)
    Term.(
      const serve $ socket_arg $ cache_arg $ domains_arg $ max_pending_arg
      $ trace_arg $ trace_format_arg $ metrics_out_arg $ allow_faults_arg
      $ quiet_arg)

let () = exit (Cmd.eval cmd)
