(* impactc — command-line driver for the IMPACT-style tool chain.

   Subcommands:
     parse    check a C file and report its declarations
     il       dump the lowered IL
     run      compile and execute with stdin from a file or empty
     profile  run over inputs and print node/arc weights
     inline   profile, inline, and report what was expanded
     bench    run one of the built-in benchmarks end to end

   Exit codes: 0 success, 2 usage error, 3 parse/sema/lowering error,
   4 profile error (I/O or a failing run), 5 internal error. *)

module Il = Impact_il.Il
module Lower = Impact_il.Lower
module Machine = Impact_interp.Machine
module Profiler = Impact_profile.Profiler
module Profile = Impact_profile.Profile
module Profile_io = Impact_profile.Profile_io
module Inliner = Impact_core.Inliner
module Config = Impact_core.Config
module Classify = Impact_core.Classify
module Select = Impact_core.Select
module Benchmark = Impact_bench_progs.Benchmark
module Ierr = Impact_support.Ierr
module Atomic_io = Impact_support.Atomic_io
module Errors = Impact_harness.Errors
module Pipeline = Impact_harness.Pipeline

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Every command body runs under a guard: whatever escapes is converted
   into a typed {!Ierr.t} attributed to [stage] (front-end exceptions
   carry their own stage and source location regardless), and the
   top-level handler turns it into a message and the right exit code. *)
let guarded stage f = Errors.guard stage f

let source_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"C source file")

(* Failure policy: --strict (the default) aborts on the first error;
   --degrade lets the pipeline recover where the taxonomy permits. *)

let policy_arg =
  let strict =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:"Abort on the first error of any severity (the default)")
  in
  let degrade =
    Arg.(
      value & flag
      & info [ "degrade" ]
          ~doc:
            "Recover from degradable failures: retry or drop failing \
             profiling runs, fall back to static weights (no inlining) when \
             profiling is impossible, skip callers whose expansion fails, \
             and report a broken trace sink instead of aborting")
  in
  Term.(
    const (fun s d -> if d && not s then Pipeline.Degrade else Pipeline.Strict)
    $ strict $ degrade)

(* Observability: --trace/--metrics-out build an Obs context over a
   JSONL (or, metrics-only, in-memory) sink; with neither flag the
   context is Obs.null and behaviour is byte-identical to before. *)

module Obs = Impact_obs.Obs
module Sink = Impact_obs.Sink

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Write an event trace (spans, metrics, decision log) to $(docv)")

let trace_format_arg =
  let fmt = Arg.enum [ ("jsonl", `Jsonl); ("chrome", `Chrome) ] in
  Arg.(
    value & opt fmt `Jsonl
    & info [ "trace-format" ] ~docv:"FORMAT"
        ~doc:
          "Format of the $(b,--trace) file: $(b,jsonl) (one event object per \
           line, the default) or $(b,chrome) (Chrome trace-event JSON with \
           one track per domain — load it in ui.perfetto.dev or \
           chrome://tracing)")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:"Write the final counter/gauge snapshot as JSON to $(docv)")

(* The trace stream goes to [trace ^ ".tmp"] and is renamed into place
   only after the run succeeded with a healthy sink, so a crash or a
   mid-run write failure never leaves a partial artifact behind.  The
   chrome format needs the whole event list at once (span begin/end
   pairing), so it buffers in a memory sink and converts at the end —
   same atomicity, via Trace_export.write_chrome. *)
let with_obs ?(policy = Pipeline.Strict) ?(trace_format = `Jsonl) ~trace
    ~metrics_out f =
  match (trace, metrics_out) with
  | None, None -> f Obs.null
  | _ ->
    let jsonl_trace =
      match trace_format with `Jsonl -> trace | `Chrome -> None
    in
    let tmp = Option.map Atomic_io.tmp_path jsonl_trace in
    let oc =
      guarded Ierr.Artifact (fun () -> Option.map open_out_bin tmp)
    in
    let sink =
      match oc with Some oc -> Sink.jsonl oc | None -> Sink.memory ()
    in
    let obs = Obs.create sink in
    let discard () =
      Option.iter close_out_noerr oc;
      Option.iter (fun t -> try Sys.remove t with Sys_error _ -> ()) tmp
    in
    (match f obs with
    | exception e ->
      discard ();
      raise e
    | v ->
      guarded Ierr.Artifact (fun () -> Obs.finish ?metrics_out obs);
      (match Sink.broken sink with
      | None ->
        Option.iter close_out_noerr oc;
        Option.iter
          (fun t -> guarded Ierr.Artifact (fun () ->
               Sys.rename t (Option.get jsonl_trace)))
          tmp;
        (match (trace, trace_format) with
        | Some path, `Chrome ->
          guarded Ierr.Artifact (fun () ->
              Impact_obs.Trace_export.write_chrome path (Sink.events sink))
        | _ -> ())
      | Some e -> (
        discard ();
        let err = Errors.classify Ierr.Artifact e in
        match policy with
        | Pipeline.Strict -> raise (Ierr.Error err)
        | Pipeline.Degrade ->
          Printf.eprintf "impactc: warning: trace discarded: %s\n"
            (Ierr.to_string err)));
      v)

let input_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "i"; "input" ] ~docv:"INPUT" ~doc:"File supplying the program's stdin")

let inputs_arg =
  Arg.(
    value
    & opt_all file []
    & info [ "i"; "input" ] ~docv:"INPUT" ~doc:"Profiling input file (repeatable)")

let optimize_arg =
  Arg.(value & flag & info [ "O" ] ~doc:"Apply pre-inline optimisations first")

(* Interpreter core and profiling parallelism. *)

let engine_arg =
  Arg.(
    value
    & opt
        (enum [ ("threaded", Machine.Threaded); ("reference", Machine.Reference) ])
        Machine.Threaded
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Interpreter core: $(b,threaded) (pre-decoded, the default) or \
           $(b,reference) (the small-step oracle)")

let jobs_arg =
  Arg.(
    value
    & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Fan independent profiling runs across $(docv) domains (default 1; \
           results are deterministic regardless of $(docv))")

let timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout" ] ~docv:"SECONDS"
        ~doc:"Wall-clock budget per profiling run (default: none)")

module Coverage = Impact_profile.Coverage

let profile_mode_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("full", Coverage.Full);
             ("min", Coverage.Min);
             ("sampled", Coverage.Sampled);
           ])
        Coverage.Full
    & info [ "profile-mode" ] ~docv:"MODE"
        ~doc:
          "Profiling instrumentation: $(b,full) counts every call site (the \
           default); $(b,min) instruments only a minimum-coverage subset of \
           sites and reconstructs the rest exactly from flow conservation — \
           the profile is bit-identical to $(b,full) at lower run-time cost; \
           $(b,sampled) counts sites on a periodic fuel phase and scales up — \
           cheapest, but approximate and marked as such")

(* Speculative devirtualization: --devirt rewrites indirect call sites
   whose value profile shows one dominant target into a guarded direct
   call, so the speculated callee becomes inlinable. *)

let devirt_arg =
  Arg.(
    value & flag
    & info [ "devirt" ]
        ~doc:
          "Speculatively devirtualize indirect call sites whose recorded \
           target histogram is dominated by a single function: the site is \
           rewritten into $(b,if (fp == &f) f(...) else (*fp)(...)), and the \
           direct call then takes part in inline expansion.  Requires a \
           dynamic profile; a profile without value data (an old saved \
           profile, or static weights) simply speculates nothing.")

let devirt_threshold_arg =
  Arg.(
    value
    & opt float Config.default.Config.devirt_threshold
    & info [ "devirt-threshold" ] ~docv:"SHARE"
        ~doc:
          "Minimum share of a site's recorded indirect calls the dominant \
           target must hold before $(b,--devirt) speculates on it \
           (default $(b,0.8))")

let config_term =
  Term.(
    const (fun devirt devirt_threshold ->
        { Config.default with Config.devirt; devirt_threshold })
    $ devirt_arg $ devirt_threshold_arg)

(* Incremental driving: --cache DIR makes every expensive pipeline stage
   consult a content-addressed store first, so reruns over unchanged
   sources/configs skip the work entirely. *)

let cache_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache" ] ~docv:"DIR"
        ~doc:
          "Reuse front-end, profiling, classification and inlining artifacts \
           from the content-addressed stage cache at $(docv) when their \
           inputs (source bytes, program and profile checksums, config \
           fingerprint) are unchanged, and store fresh ones for the next \
           run.  Corrupt or truncated entries are recomputed, never fatal.")

let cache_of = Option.map Impact_harness.Cache.create

let report_cache = function
  | None -> ()
  | Some c ->
    let s = Impact_support.Cstore.stats (Impact_harness.Cache.cstore c) in
    Printf.eprintf
      "impactc: cache: %d hit(s), %d miss(es), %d stored, %d corrupt, %d \
       evicted\n"
      s.Impact_support.Cstore.hits s.Impact_support.Cstore.misses
      s.Impact_support.Cstore.stores s.Impact_support.Cstore.corrupt
      s.Impact_support.Cstore.evictions

let budget_of_timeout = function
  | None -> None
  | Some t -> Some (Impact_interp.Rt.budget ~timeout_s:t ())

(* parse *)

let dump_arg =
  Arg.(
    value & flag
    & info [ "dump" ] ~doc:"Pretty-print the parsed program back as C")

let parse_cmd =
  let run src dump =
    guarded Ierr.Driver (fun () ->
        if dump then
          print_string
            (Impact_cfront.C_pp.print_program
               (Impact_cfront.Parser.parse_program (read_file src)));
        let tp = Impact_cfront.Sema.check_source (read_file src) in
        Printf.printf "%d function(s), %d global(s), %d extern(s), %d string(s)\n"
          (List.length tp.Impact_cfront.Tast.funcs)
          (List.length tp.Impact_cfront.Tast.globals)
          (List.length tp.Impact_cfront.Tast.externs)
          (Array.length tp.Impact_cfront.Tast.strings);
        List.iter
          (fun (f : Impact_cfront.Tast.tfunc) ->
            Printf.printf "  %s %s(%d params)\n"
              (Impact_cfront.Ast.string_of_ty f.Impact_cfront.Tast.f_ret)
              f.Impact_cfront.Tast.f_name
              (List.length f.Impact_cfront.Tast.f_params))
          tp.Impact_cfront.Tast.funcs)
  in
  Cmd.v (Cmd.info "parse" ~doc:"Parse and type-check a C file")
    Term.(const run $ source_arg $ dump_arg)

(* il *)

let il_cmd =
  let run src optimize =
    guarded Ierr.Driver (fun () ->
        let prog = Lower.lower_source (read_file src) in
        if optimize then ignore (Impact_opt.Driver.pre_inline prog);
        print_string (Impact_il.Il_pp.dump prog))
  in
  Cmd.v (Cmd.info "il" ~doc:"Dump the lowered intermediate language")
    Term.(const run $ source_arg $ optimize_arg)

(* run *)

let run_cmd =
  let run src input optimize engine timeout trace trace_format metrics_out =
    (* Execution failures (traps, exhausted budgets) are profile-stage
       errors: the program ran, the run failed — exit 4, not 5. *)
    guarded Ierr.Profile_run (fun () ->
        with_obs ~trace_format ~trace ~metrics_out (fun obs ->
            let prog =
              Obs.span obs "lower" (fun () -> Lower.lower_source (read_file src))
            in
            if optimize then
              ignore
                (Obs.span obs "pre_opt" (fun () -> Impact_opt.Driver.pre_inline prog));
            let stdin_data = match input with Some f -> read_file f | None -> "" in
            let outcome =
              Machine.run ~obs ~engine ?budget:(budget_of_timeout timeout) prog
                ~input:stdin_data
            in
            print_string outcome.Machine.output;
            Printf.eprintf "[exit %d; %s]\n" outcome.Machine.exit_code
              (Impact_interp.Counters.summary outcome.Machine.counters);
            outcome.Machine.exit_code))
    |> exit
  in
  Cmd.v (Cmd.info "run" ~doc:"Compile and execute a C file")
    Term.(
      const run $ source_arg $ input_arg $ optimize_arg $ engine_arg
      $ timeout_arg $ trace_arg $ trace_format_arg $ metrics_out_arg)

(* profile *)

let output_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the profile to FILE")

let profile_file_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "p"; "profile" ] ~docv:"FILE"
        ~doc:"Use a saved profile instead of re-profiling")

let report_coverage (c : Profiler.coverage) =
  (match c.Profiler.effective with
  | Coverage.Full when c.Profiler.requested <> Coverage.Full ->
    (* A Min plan was poisoned by a fabricated indirect-call target and
       the sweep was redone fully instrumented. *)
    Printf.eprintf
      "impactc: profile-mode %s fell back to full instrumentation (indirect \
       call outside the planned targets)\n"
      (Coverage.mode_name c.Profiler.requested)
  | _ -> ());
  if c.Profiler.counted_sites < c.Profiler.total_sites then
    Printf.eprintf "impactc: instrumented %d of %d call sites (%.1f%%)\n"
      c.Profiler.counted_sites c.Profiler.total_sites
      (100.
      *. float_of_int c.Profiler.counted_sites
      /. float_of_int (max c.Profiler.total_sites 1));
  match c.Profiler.sample_coverage with
  | Some cov ->
    Printf.eprintf
      "impactc: site weights are sampled (approximate); scaled samples cover \
       %.1f%% of dynamic calls\n"
      (100. *. cov)
  | None -> ()

let profile_cmd =
  let run src inputs output engine jobs timeout mode =
    guarded Ierr.Profile_run (fun () ->
        let prog = Lower.lower_source (read_file src) in
        ignore (Impact_opt.Driver.pre_inline prog);
        let inputs =
          match inputs with [] -> [ "" ] | files -> List.map read_file files
        in
        let { Profiler.profile; coverage; _ } =
          Profiler.profile ~engine ~jobs ?budget:(budget_of_timeout timeout)
            ~mode prog ~inputs
        in
        report_coverage coverage;
        (match output with
        | Some path ->
          Profile_io.save ~checksum:(Profile_io.program_checksum prog)
            ~mode:coverage.Profiler.effective path profile;
          Printf.printf "profile written to %s\n" path
        | None -> ());
        Printf.printf "%s\n" (Profile.to_string profile);
        Array.iter
          (fun (f : Il.func) ->
            if f.Il.alive then
              Printf.printf "  %-20s weight %10.1f  size %5d  stack %5d\n" f.Il.name
                (Profile.func_weight profile f.Il.fid)
                (Il.code_size f) (Il.stack_usage f))
          prog.Il.funcs)
  in
  Cmd.v (Cmd.info "profile" ~doc:"Profile a C program over input files")
    Term.(
      const run $ source_arg $ inputs_arg $ output_arg $ engine_arg $ jobs_arg
      $ timeout_arg $ profile_mode_arg)

(* inline *)

let inline_cmd =
  let run src inputs profile_file engine jobs policy mode config trace
      trace_format metrics_out =
    guarded Ierr.Driver (fun () ->
        with_obs ~policy ~trace_format ~trace ~metrics_out (fun obs ->
        let prog =
          Obs.span obs "lower" (fun () -> Lower.lower_source (read_file src))
        in
        ignore (Obs.span obs "pre_opt" (fun () -> Impact_opt.Driver.pre_inline prog));
        let checksum = Profile_io.program_checksum prog in
        let profile_dynamically () =
          let inputs =
            match inputs with [] -> [ "" ] | files -> List.map read_file files
          in
          Obs.span obs "profile" (fun () ->
              let r = Profiler.profile ~obs ~engine ~jobs ~mode prog ~inputs in
              report_coverage r.Profiler.coverage;
              r.Profiler.profile)
        in
        let profile =
          match profile_file with
          | None -> profile_dynamically ()
          | Some path -> (
            (* The saved profile is validated against this very program
               and the requested mode: a corrupt file, a checksum
               recorded for different IL, or a profile collected under a
               different instrumentation mode is a typed stale-profile
               error.  Strict aborts; degrade re-profiles, and if that
               fails too, falls back to static weights (no inlining). *)
            match
              Profile_io.load ~expect_checksum:checksum ~expect_mode:mode path
            with
            | Ok p -> p
            | Error e -> (
              match policy with
              | Pipeline.Strict -> raise (Ierr.Error e)
              | Pipeline.Degrade -> (
                Printf.eprintf "impactc: warning: %s; re-profiling\n"
                  (Ierr.to_string e);
                try profile_dynamically ()
                with e2 ->
                  Printf.eprintf
                    "impactc: warning: re-profiling failed (%s); using static \
                     weights (no inlining)\n"
                    (match e2 with
                    | Ierr.Error t -> Ierr.to_string t
                    | e2 -> Printexc.to_string e2);
                  Profile.static_uniform
                    ~nfuncs:(Array.length prog.Il.funcs)
                    ~nsites:prog.Il.next_site)))
        in
        let report =
          Obs.span obs "inline" (fun () -> Inliner.run ~obs ~config prog profile)
        in
        List.iter
          (fun (d : Impact_opt.Devirt.decision) ->
            Printf.printf
              "  devirtualized site %d in %s: speculating %s (%.0f%% of %.1f \
               calls)\n"
              d.Impact_opt.Devirt.d_site
              prog.Il.funcs.(d.Impact_opt.Devirt.d_caller).Il.name
              prog.Il.funcs.(d.Impact_opt.Devirt.d_target).Il.name
              (100. *. d.Impact_opt.Devirt.d_share)
              d.Impact_opt.Devirt.d_weight)
          report.Inliner.devirt;
        Printf.printf "code size: %d -> %d instructions (%+.1f%%)\n"
          report.Inliner.size_before report.Inliner.size_after
          (100.
          *. float_of_int (report.Inliner.size_after - report.Inliner.size_before)
          /. float_of_int (max report.Inliner.size_before 1));
        List.iter
          (fun (site, caller, callee) ->
            Printf.printf "  expanded site %d: %s <- %s\n" site
              prog.Il.funcs.(caller).Il.name prog.Il.funcs.(callee).Il.name)
          report.Inliner.expansion.Impact_core.Expand.expansions;
        let counts = Classify.static_summary report.Inliner.classified in
        Printf.printf
          "call sites: %d total (%d external, %d pointer, %d unsafe, %d safe)\n"
          counts.Classify.total counts.Classify.external_ counts.Classify.pointer
          counts.Classify.unsafe counts.Classify.safe))
  in
  Cmd.v
    (Cmd.info "inline" ~doc:"Profile-guided inline expansion of a C program")
    Term.(const run $ source_arg $ inputs_arg $ profile_file_arg $ engine_arg
          $ jobs_arg $ policy_arg $ profile_mode_arg $ config_term $ trace_arg
          $ trace_format_arg $ metrics_out_arg)

(* bench *)

let report_degradations r =
  List.iter
    (fun (d : Pipeline.degradation) ->
      Printf.eprintf "impactc: degraded [%s] %s — %s\n"
        (Ierr.stage_name d.Pipeline.d_stage)
        d.Pipeline.d_detail d.Pipeline.d_action)
    r.Pipeline.degradations

let bench_cmd =
  let name_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"NAME"
          ~doc:
            (Printf.sprintf "Benchmark name (one of: %s)"
               (String.concat ", " Impact_bench_progs.Suite.names)))
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the benchmark's table rows (Report.to_json) to $(docv)")
  in
  let run name engine jobs policy timeout cache_dir mode config trace
      trace_format metrics_out json =
    match Impact_bench_progs.Suite.find name with
    | exception Not_found ->
      Printf.eprintf "unknown benchmark '%s'\n" name;
      exit 2
    | bench ->
      guarded Ierr.Driver (fun () ->
          let cache = cache_of cache_dir in
          let r =
            with_obs ~policy ~trace_format ~trace ~metrics_out (fun obs ->
                Pipeline.run ~obs ~policy ~config ?cache ~engine ~jobs
                  ?budget:(budget_of_timeout timeout) ~profile_mode:mode bench)
          in
          report_degradations r;
          report_cache cache;
          (match json with
          | Some path ->
            guarded Ierr.Artifact (fun () ->
                Atomic_io.write_string path
                  (Sink.json_to_string (Impact_harness.Report.to_json [ r ])
                  ^ "\n"))
          | None -> ());
          Printf.printf "%s: code %+.0f%%, calls -%.0f%%, outputs match: %b\n"
            name
            (Pipeline.code_increase r)
            (Pipeline.call_decrease r)
            r.Pipeline.outputs_match)
  in
  Cmd.v (Cmd.info "bench" ~doc:"Run one built-in benchmark end to end")
    Term.(
      const run $ name_arg $ engine_arg $ jobs_arg $ policy_arg $ timeout_arg
      $ cache_arg $ profile_mode_arg $ config_term $ trace_arg
      $ trace_format_arg $ metrics_out_arg $ json_arg)

(* Default command: the full observed pipeline over a user C file —
   `impactc --trace t.jsonl --metrics-out m.json -O file.c` compiles,
   profiles, inlines and re-profiles, with every stage in its own
   span. *)

let default_term =
  let run src inputs optimize engine jobs policy timeout cache_dir mode config
      trace trace_format metrics_out =
    match src with
    | None -> `Help (`Pager, None)
    | Some src ->
      guarded Ierr.Driver (fun () ->
          let source = read_file src in
          let bench =
            {
              Benchmark.name = Filename.basename src;
              description = "user program";
              source;
              inputs =
                (fun () ->
                  match inputs with
                  | [] -> [ "" ]
                  | files -> List.map read_file files);
            }
          in
          let cache = cache_of cache_dir in
          let r =
            with_obs ~policy ~trace_format ~trace ~metrics_out (fun obs ->
                Pipeline.run ~obs ~policy ~config ~pre_opt:optimize ?cache
                  ~engine ~jobs ?budget:(budget_of_timeout timeout)
                  ~profile_mode:mode bench)
          in
          report_degradations r;
          report_cache cache;
          (match r.Pipeline.inliner.Inliner.devirt with
          | [] -> ()
          | ds -> Printf.printf "devirtualized %d indirect site(s)\n" (List.length ds));
          Printf.printf "%s\n" (Profile.to_string r.Pipeline.profile);
          Printf.printf "code size: %d -> %d instructions (%+.1f%%)\n"
            r.Pipeline.inliner.Inliner.size_before
            r.Pipeline.inliner.Inliner.size_after
            (Pipeline.code_increase r);
          Printf.printf "dynamic calls: %.0f -> %.0f per run (-%.0f%%)\n"
            r.Pipeline.profile.Profile.avg_calls
            r.Pipeline.post_profile.Profile.avg_calls
            (Pipeline.call_decrease r);
          Printf.printf "outputs match: %b\n" r.Pipeline.outputs_match);
      `Ok ()
  in
  let opt_source_arg =
    Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"C source file")
  in
  Term.(
    ret
      (const run $ opt_source_arg $ inputs_arg $ optimize_arg $ engine_arg
     $ jobs_arg $ policy_arg $ timeout_arg $ cache_arg $ profile_mode_arg
     $ config_term $ trace_arg $ trace_format_arg $ metrics_out_arg))

let () =
  Printexc.record_backtrace true;
  let doc = "profile-guided inline function expansion for C (PLDI 1989)" in
  let info = Cmd.info "impactc" ~version:"1.0.0" ~doc in
  let group =
    Cmd.group ~default:default_term info
      [ parse_cmd; il_cmd; run_cmd; profile_cmd; inline_cmd; bench_cmd ]
  in
  (* ~catch:false so failures reach the typed handler below instead of
     cmdliner's backtrace printer; usage errors map to exit 2, typed
     errors to their taxonomy code (3 front-end, 4 profile, 5 internal),
     and the message always carries the source location when the error
     has one. *)
  match Cmd.eval_value ~catch:false group with
  | Ok (`Ok ()) -> exit 0
  | Ok (`Help | `Version) -> exit 0
  | Error (`Parse | `Term) -> exit 2
  | Error `Exn ->
    (* Only reachable under cmdliner's own catch (we pass ~catch:false,
       so this is belt-and-braces): never exit mute. *)
    prerr_endline
      "impactc: internal error: exception consumed by the command parser \
       (see the report above)";
    exit 5
  | exception Ierr.Error e ->
    Printf.eprintf "impactc: %s\n" (Ierr.to_string e);
    exit (Ierr.exit_code e)
  | exception e ->
    let bt = Printexc.get_backtrace () in
    Printf.eprintf "impactc: internal error: %s\n%s%!" (Printexc.to_string e)
      bt;
    exit 5
