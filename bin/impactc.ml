(* impactc — command-line driver for the IMPACT-style tool chain.

   Subcommands:
     parse    check a C file and report its declarations
     il       dump the lowered IL
     run      compile and execute with stdin from a file or empty
     profile  run over inputs and print node/arc weights
     inline   profile, inline, and report what was expanded
     bench    run one of the built-in benchmarks end to end *)

module Il = Impact_il.Il
module Lower = Impact_il.Lower
module Machine = Impact_interp.Machine
module Profiler = Impact_profile.Profiler
module Profile = Impact_profile.Profile
module Inliner = Impact_core.Inliner
module Classify = Impact_core.Classify
module Select = Impact_core.Select
module Benchmark = Impact_bench_progs.Benchmark

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let with_frontend_errors f =
  try f () with
  | Impact_cfront.Lexer.Lex_error (msg, loc) ->
    Printf.eprintf "lex error at %s: %s\n" (Impact_cfront.Srcloc.to_string loc) msg;
    exit 1
  | Impact_cfront.Parser.Parse_error (msg, loc) ->
    Printf.eprintf "parse error at %s: %s\n" (Impact_cfront.Srcloc.to_string loc) msg;
    exit 1
  | Impact_cfront.Sema.Sema_error (msg, loc) ->
    Printf.eprintf "semantic error at %s: %s\n" (Impact_cfront.Srcloc.to_string loc) msg;
    exit 1
  | Lower.Lower_error msg ->
    Printf.eprintf "lowering error: %s\n" msg;
    exit 1
  | Machine.Trap msg ->
    Printf.eprintf "runtime trap: %s\n" msg;
    exit 1

let source_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"C source file")

(* Observability: --trace/--metrics-out build an Obs context over a
   JSONL (or, metrics-only, in-memory) sink; with neither flag the
   context is Obs.null and behaviour is byte-identical to before. *)

module Obs = Impact_obs.Obs
module Sink = Impact_obs.Sink

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Write a JSONL event trace (spans, metrics, decision log) to $(docv)")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:"Write the final counter/gauge snapshot as JSON to $(docv)")

let with_obs ~trace ~metrics_out f =
  match (trace, metrics_out) with
  | None, None -> f Obs.null
  | _ ->
    let open_or_die path =
      try open_out path
      with Sys_error msg ->
        Printf.eprintf "cannot open trace file: %s\n" msg;
        exit 1
    in
    let oc = Option.map open_or_die trace in
    let sink =
      match oc with Some oc -> Sink.jsonl oc | None -> Sink.memory ()
    in
    let obs = Obs.create sink in
    Fun.protect
      ~finally:(fun () ->
        (try Obs.finish ?metrics_out obs
         with Sys_error msg ->
           Printf.eprintf "cannot write metrics file: %s\n" msg;
           exit 1);
        Option.iter close_out oc)
      (fun () -> f obs)

let input_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "i"; "input" ] ~docv:"INPUT" ~doc:"File supplying the program's stdin")

let inputs_arg =
  Arg.(
    value
    & opt_all file []
    & info [ "i"; "input" ] ~docv:"INPUT" ~doc:"Profiling input file (repeatable)")

let optimize_arg =
  Arg.(value & flag & info [ "O" ] ~doc:"Apply pre-inline optimisations first")

(* Interpreter core and profiling parallelism. *)

let engine_arg =
  Arg.(
    value
    & opt
        (enum [ ("threaded", Machine.Threaded); ("reference", Machine.Reference) ])
        Machine.Threaded
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Interpreter core: $(b,threaded) (pre-decoded, the default) or \
           $(b,reference) (the small-step oracle)")

let jobs_arg =
  Arg.(
    value
    & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Fan independent profiling runs across $(docv) domains (default 1; \
           results are deterministic regardless of $(docv))")

(* parse *)

let dump_arg =
  Arg.(
    value & flag
    & info [ "dump" ] ~doc:"Pretty-print the parsed program back as C")

let parse_cmd =
  let run src dump =
    with_frontend_errors (fun () ->
        if dump then
          print_string
            (Impact_cfront.C_pp.print_program
               (Impact_cfront.Parser.parse_program (read_file src)));
        let tp = Impact_cfront.Sema.check_source (read_file src) in
        Printf.printf "%d function(s), %d global(s), %d extern(s), %d string(s)\n"
          (List.length tp.Impact_cfront.Tast.funcs)
          (List.length tp.Impact_cfront.Tast.globals)
          (List.length tp.Impact_cfront.Tast.externs)
          (Array.length tp.Impact_cfront.Tast.strings);
        List.iter
          (fun (f : Impact_cfront.Tast.tfunc) ->
            Printf.printf "  %s %s(%d params)\n"
              (Impact_cfront.Ast.string_of_ty f.Impact_cfront.Tast.f_ret)
              f.Impact_cfront.Tast.f_name
              (List.length f.Impact_cfront.Tast.f_params))
          tp.Impact_cfront.Tast.funcs)
  in
  Cmd.v (Cmd.info "parse" ~doc:"Parse and type-check a C file")
    Term.(const run $ source_arg $ dump_arg)

(* il *)

let il_cmd =
  let run src optimize =
    with_frontend_errors (fun () ->
        let prog = Lower.lower_source (read_file src) in
        if optimize then ignore (Impact_opt.Driver.pre_inline prog);
        print_string (Impact_il.Il_pp.dump prog))
  in
  Cmd.v (Cmd.info "il" ~doc:"Dump the lowered intermediate language")
    Term.(const run $ source_arg $ optimize_arg)

(* run *)

let run_cmd =
  let run src input optimize engine trace metrics_out =
    with_frontend_errors (fun () ->
        with_obs ~trace ~metrics_out (fun obs ->
            let prog =
              Obs.span obs "lower" (fun () -> Lower.lower_source (read_file src))
            in
            if optimize then
              ignore
                (Obs.span obs "pre_opt" (fun () -> Impact_opt.Driver.pre_inline prog));
            let stdin_data = match input with Some f -> read_file f | None -> "" in
            let outcome = Machine.run ~obs ~engine prog ~input:stdin_data in
            print_string outcome.Machine.output;
            Printf.eprintf "[exit %d; %s]\n" outcome.Machine.exit_code
              (Impact_interp.Counters.summary outcome.Machine.counters);
            outcome.Machine.exit_code)
        |> exit)
  in
  Cmd.v (Cmd.info "run" ~doc:"Compile and execute a C file")
    Term.(
      const run $ source_arg $ input_arg $ optimize_arg $ engine_arg $ trace_arg
      $ metrics_out_arg)

(* profile *)

let output_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the profile to FILE")

let profile_file_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "p"; "profile" ] ~docv:"FILE"
        ~doc:"Use a saved profile instead of re-profiling")

let profile_cmd =
  let run src inputs output engine jobs =
    with_frontend_errors (fun () ->
        let prog = Lower.lower_source (read_file src) in
        ignore (Impact_opt.Driver.pre_inline prog);
        let inputs =
          match inputs with [] -> [ "" ] | files -> List.map read_file files
        in
        let { Profiler.profile; _ } = Profiler.profile ~engine ~jobs prog ~inputs in
        (match output with
        | Some path ->
          Impact_profile.Profile_io.save path profile;
          Printf.printf "profile written to %s\n" path
        | None -> ());
        Printf.printf "%s\n" (Profile.to_string profile);
        Array.iter
          (fun (f : Il.func) ->
            if f.Il.alive then
              Printf.printf "  %-20s weight %10.1f  size %5d  stack %5d\n" f.Il.name
                (Profile.func_weight profile f.Il.fid)
                (Il.code_size f) (Il.stack_usage f))
          prog.Il.funcs)
  in
  Cmd.v (Cmd.info "profile" ~doc:"Profile a C program over input files")
    Term.(const run $ source_arg $ inputs_arg $ output_arg $ engine_arg $ jobs_arg)

(* inline *)

let inline_cmd =
  let run src inputs profile_file engine jobs trace metrics_out =
    with_frontend_errors (fun () ->
        with_obs ~trace ~metrics_out (fun obs ->
        let prog =
          Obs.span obs "lower" (fun () -> Lower.lower_source (read_file src))
        in
        ignore (Obs.span obs "pre_opt" (fun () -> Impact_opt.Driver.pre_inline prog));
        let profile =
          match profile_file with
          | Some path -> Impact_profile.Profile_io.load path
          | None ->
            let inputs =
              match inputs with [] -> [ "" ] | files -> List.map read_file files
            in
            Obs.span obs "profile" (fun () ->
                (Profiler.profile ~obs ~engine ~jobs prog ~inputs).Profiler.profile)
        in
        let report = Obs.span obs "inline" (fun () -> Inliner.run ~obs prog profile) in
        Printf.printf "code size: %d -> %d instructions (%+.1f%%)\n"
          report.Inliner.size_before report.Inliner.size_after
          (100.
          *. float_of_int (report.Inliner.size_after - report.Inliner.size_before)
          /. float_of_int (max report.Inliner.size_before 1));
        List.iter
          (fun (site, caller, callee) ->
            Printf.printf "  expanded site %d: %s <- %s\n" site
              prog.Il.funcs.(caller).Il.name prog.Il.funcs.(callee).Il.name)
          report.Inliner.expansion.Impact_core.Expand.expansions;
        let counts = Classify.static_summary report.Inliner.classified in
        Printf.printf
          "call sites: %d total (%d external, %d pointer, %d unsafe, %d safe)\n"
          counts.Classify.total counts.Classify.external_ counts.Classify.pointer
          counts.Classify.unsafe counts.Classify.safe))
  in
  Cmd.v
    (Cmd.info "inline" ~doc:"Profile-guided inline expansion of a C program")
    Term.(const run $ source_arg $ inputs_arg $ profile_file_arg $ engine_arg
          $ jobs_arg $ trace_arg $ metrics_out_arg)

(* bench *)

let bench_cmd =
  let name_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"NAME"
          ~doc:
            (Printf.sprintf "Benchmark name (one of: %s)"
               (String.concat ", " Impact_bench_progs.Suite.names)))
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the benchmark's table rows (Report.to_json) to $(docv)")
  in
  let run name engine jobs trace metrics_out json =
    match Impact_bench_progs.Suite.find name with
    | exception Not_found ->
      Printf.eprintf "unknown benchmark '%s'\n" name;
      exit 1
    | bench ->
      let r =
        with_obs ~trace ~metrics_out (fun obs ->
            Impact_harness.Pipeline.run ~obs ~engine ~jobs bench)
      in
      (match json with
      | Some path ->
        let oc = open_out path in
        output_string oc (Sink.json_to_string (Impact_harness.Report.to_json [ r ]));
        output_char oc '\n';
        close_out oc
      | None -> ());
      Printf.printf "%s: code %+.0f%%, calls -%.0f%%, outputs match: %b\n"
        name
        (Impact_harness.Pipeline.code_increase r)
        (Impact_harness.Pipeline.call_decrease r)
        r.Impact_harness.Pipeline.outputs_match
  in
  Cmd.v (Cmd.info "bench" ~doc:"Run one built-in benchmark end to end")
    Term.(
      const run $ name_arg $ engine_arg $ jobs_arg $ trace_arg $ metrics_out_arg
      $ json_arg)

(* Default command: the full observed pipeline over a user C file —
   `impactc --trace t.jsonl --metrics-out m.json -O file.c` compiles,
   profiles, inlines and re-profiles, with every stage in its own
   span. *)

let default_term =
  let run src inputs optimize engine jobs trace metrics_out =
    match src with
    | None -> `Help (`Pager, None)
    | Some src ->
      with_frontend_errors (fun () ->
          let source = read_file src in
          let bench =
            {
              Benchmark.name = Filename.basename src;
              description = "user program";
              source;
              inputs =
                (fun () ->
                  match inputs with
                  | [] -> [ "" ]
                  | files -> List.map read_file files);
            }
          in
          let r =
            with_obs ~trace ~metrics_out (fun obs ->
                Impact_harness.Pipeline.run ~obs ~pre_opt:optimize ~engine ~jobs
                  bench)
          in
          Printf.printf "%s\n" (Profile.to_string r.Impact_harness.Pipeline.profile);
          Printf.printf "code size: %d -> %d instructions (%+.1f%%)\n"
            r.Impact_harness.Pipeline.inliner.Inliner.size_before
            r.Impact_harness.Pipeline.inliner.Inliner.size_after
            (Impact_harness.Pipeline.code_increase r);
          Printf.printf "dynamic calls: %.0f -> %.0f per run (-%.0f%%)\n"
            r.Impact_harness.Pipeline.profile.Profile.avg_calls
            r.Impact_harness.Pipeline.post_profile.Profile.avg_calls
            (Impact_harness.Pipeline.call_decrease r);
          Printf.printf "outputs match: %b\n" r.Impact_harness.Pipeline.outputs_match);
      `Ok ()
  in
  let opt_source_arg =
    Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"C source file")
  in
  Term.(
    ret
      (const run $ opt_source_arg $ inputs_arg $ optimize_arg $ engine_arg
     $ jobs_arg $ trace_arg $ metrics_out_arg))

let () =
  let doc = "profile-guided inline function expansion for C (PLDI 1989)" in
  let info = Cmd.info "impactc" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group ~default:default_term info
          [ parse_cmd; il_cmd; run_cmd; profile_cmd; inline_cmd; bench_cmd ]))
